//! Request traces: records, synthesis, and the paper's region presets.
//!
//! A trace is an ordered sequence of [`Request`]s. Synthesis follows §4.1:
//! each request is assigned to a PoP with probability proportional to metro
//! population, lands on a uniformly random leaf of that PoP's access tree,
//! and asks for an object drawn from the (possibly spatially skewed)
//! Zipf popularity distribution. Object ids are global popularity ranks
//! (object 0 is globally most popular).

use crate::sizes::SizeModel;
use crate::skew::SpatialModel;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// One content request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// PoP where the request enters the network.
    pub pop: u16,
    /// Leaf index within the PoP's access tree (0-based).
    pub leaf: u16,
    /// Requested object (global popularity rank).
    pub object: u32,
}

/// Temporal locality of the request stream at each leaf.
///
/// Real CDN edge logs are much more repetitive than an independent-draws
/// (IRM) Zipf stream with the same fitted exponent: client sessions and
/// regional bursts re-reference recently requested objects. The Zipf fit of
/// Figure 1 / Table 2 constrains only the *marginal* popularity, so the
/// synthesizer models locality separately: with probability `q` a request
/// replays one of the last `window` objects requested at the same leaf
/// (uniformly), and otherwise draws fresh from the Zipf marginal. `q` is
/// calibrated once against the paper's published design gaps (see
/// EXPERIMENTS.md); `q = 0` recovers pure IRM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Locality {
    /// Probability that a request re-references the leaf's recent history.
    pub q: f64,
    /// Per-leaf history length (in requests).
    pub window: usize,
}

/// Parameters for synthesizing a trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests.
    pub requests: usize,
    /// Universe size `O`.
    pub objects: u32,
    /// Zipf exponent α.
    pub alpha: f64,
    /// Spatial skew in `[0, 1]` (§5.1); 0 = homogeneous.
    pub skew: f64,
    /// Temporal locality; `None` = pure IRM.
    pub locality: Option<Locality>,
    /// Object size model.
    pub sizes: SizeModel,
    /// RNG seed.
    pub seed: u64,
    /// Non-stationary dynamics; `None` = the stationary synthesizer,
    /// whose RNG draw sequence is preserved bit-for-bit.
    pub dynamics: Option<crate::dynamics::DynamicsConfig>,
}

impl TraceConfig {
    /// A small default suitable for tests and the quickstart example.
    pub fn small() -> Self {
        Self {
            requests: 50_000,
            objects: 5_000,
            alpha: 1.0,
            skew: 0.0,
            locality: None,
            sizes: SizeModel::Unit,
            seed: 42,
            dynamics: None,
        }
    }
}

impl Locality {
    /// The locality level calibrated against the paper's published design
    /// gaps (Table 3 / Figure 6; the calibration run is recorded in
    /// EXPERIMENTS.md).
    pub fn cdn_default() -> Self {
        Self {
            q: 0.65,
            window: 256,
        }
    }
}

/// The paper's three CDN vantage points (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// US log: 1.1M requests, best-fit α = 0.99.
    Us,
    /// Europe log: 3.1M requests, best-fit α = 0.92.
    Europe,
    /// Asia log: 1.8M requests, best-fit α = 1.04 (used for the §4 baseline).
    Asia,
}

impl Region {
    /// Region name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Region::Us => "US",
            Region::Europe => "Europe",
            Region::Asia => "Asia",
        }
    }

    /// Paper-reported request count for the daily log.
    pub fn paper_requests(self) -> usize {
        match self {
            Region::Us => 1_100_000,
            Region::Europe => 3_100_000,
            Region::Asia => 1_800_000,
        }
    }

    /// Paper-reported best-fit Zipf exponent (Table 2).
    pub fn paper_alpha(self) -> f64 {
        match self {
            Region::Us => 0.99,
            Region::Europe => 0.92,
            Region::Asia => 1.04,
        }
    }

    /// All three regions in Table 2 order.
    pub fn all() -> [Region; 3] {
        [Region::Us, Region::Europe, Region::Asia]
    }

    /// A synthesis config for this region, scaled by `scale ∈ (0, 1]` to
    /// fit the experiment budget. The request:object ratio (200:1) and the
    /// locality level are calibrated once against the paper's published
    /// design gaps — the ratio keeps per-router caches capacity-bound at
    /// the paper's F = 5%, which the budget-normalization results (Figure
    /// 10, Table 4) depend on; see EXPERIMENTS.md.
    pub fn config(self, scale: f64) -> TraceConfig {
        assert!(scale > 0.0 && scale <= 1.0);
        let requests = ((self.paper_requests() as f64) * scale).round() as usize;
        TraceConfig {
            requests,
            objects: ((requests as f64) / 200.0).round().max(100.0) as u32,
            alpha: self.paper_alpha(),
            skew: 0.0,
            locality: Some(Locality::cdn_default()),
            sizes: SizeModel::Unit,
            seed: 0x1c_0de + self as u64,
            dynamics: None,
        }
    }
}

/// A deterministic streaming generator of synthesized requests.
///
/// This is [`Trace::synthesize`]'s generation loop lifted into an
/// iterator: the same config, populations, and leaf count produce the
/// same request sequence *by construction* (`synthesize` simply collects
/// this iterator). Memory is O(PoPs × leaves × locality-window) for the
/// per-leaf history ring buffers — independent of trace length — so a
/// full SCALE=1.0 workload can be fed straight into
/// `Simulator::run_streamed` without ever materializing the request
/// vector.
#[derive(Debug, Clone)]
pub struct TraceIter {
    rng: StdRng,
    zipf: Zipf,
    spatial: SpatialModel,
    /// Cumulative population weights for PoP selection.
    cum: Vec<f64>,
    leaves_per_pop: u32,
    loc_q: f64,
    loc_window: usize,
    /// Per-leaf recent-history ring buffers for the locality component.
    history: Vec<Vec<u32>>,
    hist_pos: Vec<usize>,
    remaining: usize,
    /// Requests emitted so far — the logical clock driving the dynamics.
    emitted: u64,
    /// Non-stationary dynamics state; `None` leaves the per-request RNG
    /// draw sequence exactly as it was before dynamics existed.
    dynamics: Option<crate::dynamics::DynamicsState>,
}

impl TraceIter {
    /// A generator over a network with the given PoP populations and
    /// leaves per access tree. Validates the same invariants as
    /// [`Trace::synthesize`].
    pub fn new(config: &TraceConfig, populations: &[u64], leaves_per_pop: u32) -> Self {
        assert!(!populations.is_empty());
        assert!(leaves_per_pop >= 1);
        assert!(
            populations.len() <= u16::MAX as usize,
            "too many PoPs for u16"
        );
        assert!(leaves_per_pop <= u16::MAX as u32, "too many leaves for u16");
        let rng = StdRng::seed_from_u64(config.seed);
        let zipf = Zipf::new(config.objects as usize, config.alpha);
        let spatial = SpatialModel::new(
            config.objects,
            populations.len() as u32,
            config.skew,
            config.seed ^ 0x5b5b_5b5b,
        );
        let mut cum: Vec<f64> = Vec::with_capacity(populations.len());
        let total: u64 = populations.iter().sum();
        assert!(total > 0, "zero total population");
        let mut acc = 0.0;
        for &p in populations {
            acc += p as f64 / total as f64;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let (loc_q, loc_window) = match config.locality {
            Some(l) => {
                assert!((0.0..=1.0).contains(&l.q), "locality q must be in [0,1]");
                assert!(l.window >= 1, "locality window must be >= 1");
                (l.q, l.window)
            }
            None => (0.0, 1),
        };
        let n_leaves = populations.len() * leaves_per_pop as usize;
        let history: Vec<Vec<u32>> = vec![Vec::new(); if loc_q > 0.0 { n_leaves } else { 0 }];
        let hist_pos: Vec<usize> = vec![0; history.len()];
        let dynamics = config
            .dynamics
            .as_ref()
            .filter(|d| !d.is_static())
            .map(|d| {
                crate::dynamics::DynamicsState::new(
                    d,
                    config.objects,
                    config.alpha,
                    populations,
                    config.requests,
                    config.seed,
                )
            });
        Self {
            rng,
            zipf,
            spatial,
            cum,
            leaves_per_pop,
            loc_q,
            loc_window,
            history,
            hist_pos,
            remaining: config.requests,
            emitted: 0,
            dynamics,
        }
    }
}

impl Iterator for TraceIter {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let t = self.emitted;
        self.emitted += 1;
        if let Some(d) = &mut self.dynamics {
            d.advance(t);
        }
        let u: f64 = self.rng.gen();
        // A diurnal cycle swaps in the current phase's PoP mix; otherwise
        // (and always when dynamics are off) the static cum applies, so
        // the draw count and ordering never change.
        let cum = match &self.dynamics {
            Some(d) => d.pop_cum(t).unwrap_or(&self.cum),
            None => &self.cum,
        };
        let pop = cum.partition_point(|&c| c < u).min(cum.len() - 1) as u16;
        let leaf = self.rng.gen_range(0..self.leaves_per_pop) as u16;
        let leaf_slot = pop as usize * self.leaves_per_pop as usize + leaf as usize;
        // Flash crowds pre-empt locality and the Zipf marginal: while an
        // event is active every request may land on the flash object. The
        // coin is drawn *only* while an event is active, so configs
        // without flash — and flash configs outside event windows — stay
        // on the original draw sequence.
        let flash_obj = match &self.dynamics {
            Some(d) if d.flash_active() => {
                let fu: f64 = self.rng.gen();
                d.flash_pick(t, fu)
            }
            _ => None,
        };
        let object = if let Some(o) = flash_obj {
            o
        } else if self.loc_q > 0.0
            && !self.history[leaf_slot].is_empty()
            && self.rng.gen::<f64>() < self.loc_q
        {
            // Replay a recent request from this leaf. Replayed ids are
            // *not* re-churned: the leaf asks again for the same content
            // it saw, whatever rank that content holds now.
            let h = &self.history[leaf_slot];
            h[self.rng.gen_range(0..h.len())]
        } else {
            let rank = match &self.dynamics {
                Some(d) => match d.zipf(t) {
                    Some(z) => z.sample(&mut self.rng) as u32,
                    None => self.zipf.sample(&mut self.rng) as u32,
                },
                None => self.zipf.sample(&mut self.rng) as u32,
            };
            let raw = self.spatial.object_for_rank(pop as u32, rank);
            match &self.dynamics {
                Some(d) => d.remap(raw),
                None => raw,
            }
        };
        if self.loc_q > 0.0 {
            let h = &mut self.history[leaf_slot];
            if h.len() < self.loc_window {
                h.push(object);
            } else {
                let p = &mut self.hist_pos[leaf_slot];
                h[*p] = object;
                *p = (*p + 1) % self.loc_window;
            }
        }
        Some(Request { pop, leaf, object })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TraceIter {}

/// A synthesized (or loaded) request trace plus per-object sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The synthesis parameters (informational for loaded traces).
    pub config: TraceConfig,
    /// The request sequence.
    pub requests: Vec<Request>,
    /// Size of each object, indexed by object id.
    pub object_sizes: Vec<u32>,
}

impl Trace {
    /// Synthesizes a trace over a network with the given PoP populations and
    /// leaves per access tree. Equivalent to collecting [`TraceIter`] —
    /// which is exactly what it does, so the streaming and materialized
    /// paths cannot drift apart.
    pub fn synthesize(config: TraceConfig, populations: &[u64], leaves_per_pop: u32) -> Self {
        let requests: Vec<Request> = TraceIter::new(&config, populations, leaves_per_pop).collect();
        let object_sizes = config.sizes.generate(config.objects, config.seed ^ 0xa5a5);
        Self {
            config,
            requests,
            object_sizes,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-object request counts (rank-frequency data for fitting).
    pub fn object_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.config.objects as usize];
        for r in &self.requests {
            counts[r.object as usize] += 1;
        }
        counts
    }

    /// Writes the trace as CSV (`pop,leaf,object` lines with a header).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "pop,leaf,object")?;
        for r in &self.requests {
            writeln!(w, "{},{},{}", r.pop, r.leaf, r.object)?;
        }
        Ok(())
    }

    /// Reads a CSV trace written by [`Trace::write_csv`]. Sizes default to
    /// unit; `config` records only what can be inferred.
    pub fn read_csv<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut requests = Vec::new();
        let mut max_object = 0u32;
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 && line.starts_with("pop") {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split(',');
            let parse_err =
                || std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad line {i}"));
            let pop = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let leaf = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            let object: u32 = it
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(parse_err)?;
            max_object = max_object.max(object);
            requests.push(Request { pop, leaf, object });
        }
        let objects = max_object + 1;
        Ok(Self {
            config: TraceConfig {
                requests: requests.len(),
                objects,
                alpha: f64::NAN,
                skew: f64::NAN,
                locality: None,
                sizes: SizeModel::Unit,
                seed: 0,
                dynamics: None,
            },
            requests,
            object_sizes: vec![1; objects as usize],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pops() -> Vec<u64> {
        vec![1_000_000, 2_000_000, 7_000_000]
    }

    #[test]
    fn synthesis_basics() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 8);
        assert_eq!(t.len(), 50_000);
        assert!(t.requests.iter().all(|r| r.pop < 3 && r.leaf < 8));
        assert!(t.requests.iter().all(|r| r.object < t.config.objects));
        assert_eq!(t.object_sizes.len(), t.config.objects as usize);
    }

    #[test]
    fn pop_assignment_follows_population() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let mut counts = [0usize; 3];
        for r in &t.requests {
            counts[r.pop as usize] += 1;
        }
        let n = t.len() as f64;
        assert!((counts[0] as f64 / n - 0.1).abs() < 0.01);
        assert!((counts[2] as f64 / n - 0.7).abs() < 0.01);
    }

    #[test]
    fn leaves_roughly_uniform() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let mut counts = [0usize; 4];
        for r in &t.requests {
            counts[r.leaf as usize] += 1;
        }
        let n = t.len() as f64;
        for c in counts {
            assert!((c as f64 / n - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn object_zero_is_most_popular_without_skew() {
        let t = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let counts = t.object_counts();
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        let b = Trace::synthesize(TraceConfig::small(), &pops(), 4);
        assert_eq!(a.requests, b.requests);
        let mut cfg = TraceConfig::small();
        cfg.seed += 1;
        let c = Trace::synthesize(cfg, &pops(), 4);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn csv_roundtrip() {
        let mut cfg = TraceConfig::small();
        cfg.requests = 500;
        let t = Trace::synthesize(cfg, &pops(), 4);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(t.requests, back.requests);
    }

    #[test]
    fn region_presets_match_table2() {
        assert_eq!(Region::Us.paper_alpha(), 0.99);
        assert_eq!(Region::Europe.paper_alpha(), 0.92);
        assert_eq!(Region::Asia.paper_alpha(), 1.04);
        let cfg = Region::Asia.config(0.1);
        assert_eq!(cfg.requests, 180_000);
        assert!(cfg.objects > 0);
    }

    #[test]
    fn locality_raises_leaf_repeat_rate() {
        let mut base = TraceConfig::small();
        base.objects = 50_000; // large universe so IRM repeats are rare
        let mut local = base.clone();
        local.locality = Some(Locality {
            q: 0.6,
            window: 128,
        });

        fn leaf_repeat_rate(t: &Trace, leaves: u16) -> f64 {
            let mut seen: Vec<std::collections::HashSet<u32>> =
                vec![Default::default(); 3 * leaves as usize];
            let mut repeats = 0usize;
            for r in &t.requests {
                let slot = r.pop as usize * leaves as usize + r.leaf as usize;
                if !seen[slot].insert(r.object) {
                    repeats += 1;
                }
            }
            repeats as f64 / t.len() as f64
        }

        let t_irm = Trace::synthesize(base, &pops(), 4);
        let t_loc = Trace::synthesize(local, &pops(), 4);
        let r_irm = leaf_repeat_rate(&t_irm, 4);
        let r_loc = leaf_repeat_rate(&t_loc, 4);
        assert!(
            r_loc > r_irm + 0.15,
            "locality should raise repeats: irm {r_irm:.3} vs loc {r_loc:.3}"
        );
    }

    #[test]
    fn replay_at_trace_head_samples_only_the_emitted_prefix() {
        // Pins the stream-head re-reference contract: while a leaf has
        // emitted fewer than `window` requests, the replay draw must
        // sample uniformly from the *actual* prefix, never from the
        // configured window — an index into unwritten ring slots would
        // replay objects the leaf never requested (or panic on an empty
        // range at the very head). With q = 1.0 every request after a
        // leaf's first replays that leaf's history, so each object must
        // already appear in that leaf's emitted prefix.
        let mut cfg = TraceConfig::small();
        cfg.requests = 2_000;
        cfg.objects = 100_000; // fresh draws would scatter widely
        cfg.locality = Some(Locality {
            q: 1.0,
            window: 256,
        });
        let leaves = 4u32;
        let mut seen: Vec<std::collections::HashSet<u32>> = vec![Default::default(); 3 * 4];
        for (i, r) in TraceIter::new(&cfg, &pops(), leaves).enumerate() {
            let slot = r.pop as usize * leaves as usize + r.leaf as usize;
            assert!(
                seen[slot].is_empty() || seen[slot].contains(&r.object),
                "request {i} replayed object {} absent from leaf {slot}'s prefix",
                r.object
            );
            seen[slot].insert(r.object);
        }
        // Each touched leaf replays exactly its own first draw forever.
        assert!(seen.iter().filter(|s| !s.is_empty()).all(|s| s.len() == 1));
    }

    #[test]
    fn first_window_draws_are_pinned() {
        // The head of the localized stream, frozen: any change to how the
        // short-prefix replay draws consume the RNG shows up here before
        // it silently shifts every figure.
        let mut cfg = TraceConfig::small();
        cfg.requests = 8;
        cfg.objects = 1_000;
        cfg.seed = 7;
        cfg.locality = Some(Locality { q: 0.9, window: 4 });
        let objs: Vec<u32> = TraceIter::new(&cfg, &[1], 1).map(|r| r.object).collect();
        assert_eq!(objs.len(), 8);
        // First draw is fresh; afterwards objects only come from the
        // prefix or fresh Zipf draws — and the exact sequence is stable.
        let expect: Vec<u32> = {
            // Reference reimplementation of the documented draw order.
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let zipf = crate::zipf::Zipf::new(cfg.objects as usize, cfg.alpha);
            let spatial =
                crate::skew::SpatialModel::new(cfg.objects, 1, cfg.skew, cfg.seed ^ 0x5b5b_5b5b);
            let mut hist: Vec<u32> = Vec::new();
            let mut pos = 0usize;
            let mut out = Vec::new();
            for _ in 0..cfg.requests {
                let _u: f64 = rng.gen();
                let _leaf = rng.gen_range(0..1u32);
                let object = if !hist.is_empty() && rng.gen::<f64>() < 0.9 {
                    hist[rng.gen_range(0..hist.len())]
                } else {
                    let rank = zipf.sample(&mut rng) as u32;
                    spatial.object_for_rank(0, rank)
                };
                if hist.len() < 4 {
                    hist.push(object);
                } else {
                    hist[pos] = object;
                    pos = (pos + 1) % 4;
                }
                out.push(object);
            }
            out
        };
        assert_eq!(objs, expect);
    }

    #[test]
    fn locality_preserves_zipf_marginal() {
        // The Table 2 validation path: a localized trace must still fit a
        // Zipf exponent close to the configured one.
        let mut cfg = TraceConfig::small();
        cfg.requests = 200_000;
        cfg.objects = 10_000;
        cfg.alpha = 1.04;
        cfg.locality = Some(Locality::cdn_default());
        let t = Trace::synthesize(cfg, &pops(), 4);
        let fit = crate::fit::fit_zipf(&t.object_counts()).unwrap();
        assert!(
            (fit.alpha_mle - 1.04).abs() < 0.15,
            "marginal drifted: fitted {}",
            fit.alpha_mle
        );
    }

    #[test]
    fn static_dynamics_config_is_bit_identical_to_none() {
        // `dynamics: Some(all-None)` must not perturb a single RNG draw:
        // the stream is the stationary synthesizer's, bit for bit.
        let mut cfg = TraceConfig::small();
        cfg.requests = 5_000;
        cfg.locality = Some(Locality::cdn_default());
        let baseline: Vec<Request> = TraceIter::new(&cfg, &pops(), 4).collect();
        cfg.dynamics = Some(crate::dynamics::DynamicsConfig::default());
        let with_static: Vec<Request> = TraceIter::new(&cfg, &pops(), 4).collect();
        assert_eq!(baseline, with_static);
    }

    #[test]
    fn flash_crowd_concentrates_requests_on_cold_objects() {
        let mut cfg = TraceConfig::small();
        cfg.requests = 40_000;
        cfg.objects = 10_000;
        let base = Trace::synthesize(cfg.clone(), &pops(), 4);
        cfg.dynamics = Some(crate::dynamics::DynamicsConfig::flash(cfg.requests));
        let flashed = Trace::synthesize(cfg, &pops(), 4);
        // Share of requests landing outside the top 10% of ranks: flash
        // events (which target the cold tail) must inflate it massively.
        let tail_share = |t: &Trace| {
            t.requests.iter().filter(|r| r.object >= 1_000).count() as f64 / t.len() as f64
        };
        let (b, f) = (tail_share(&base), tail_share(&flashed));
        assert!(f > b + 0.08, "flash tail share {f:.3} vs base {b:.3}");
        // And the hottest *tail* object runs far hotter than any tail
        // object does under IRM (the flash target soaks up the spike).
        let hot_tail = |t: &Trace| t.object_counts()[1_000..].iter().copied().max().unwrap();
        assert!(
            hot_tail(&flashed) > 5 * hot_tail(&base).max(1),
            "flash target not hot: {} vs base {}",
            hot_tail(&flashed),
            hot_tail(&base)
        );
    }

    #[test]
    fn churn_moves_the_hot_set_but_keeps_the_marginal() {
        let mut cfg = TraceConfig::small();
        cfg.requests = 100_000;
        cfg.objects = 5_000;
        // Aggressive churn (90% of the universe per rotation) so the top
        // rank's holder is all but guaranteed to move within the trace;
        // the gentler preset moves it only with moderate probability.
        cfg.dynamics = Some(crate::dynamics::DynamicsConfig {
            diurnal: None,
            flash: None,
            churn: Some(crate::dynamics::Churn {
                interval: cfg.requests as u64 / 8,
                fraction: 0.9,
            }),
        });
        let t = Trace::synthesize(cfg.clone(), &pops(), 4);
        // The Zipf *shape* survives rank rotation (ids permute, the
        // rank-frequency curve does not).
        let fit = crate::fit::fit_zipf(&t.object_counts()).unwrap();
        assert!(
            (fit.alpha_mle - 1.0).abs() < 0.15,
            "marginal drifted: {fit:?}"
        );
        // But the hot set genuinely rotates: the top object of the first
        // tenth differs from the top object of the last tenth.
        let top_of = |reqs: &[Request]| {
            let mut c = vec![0u32; cfg.objects as usize];
            for r in reqs {
                c[r.object as usize] += 1;
            }
            (0..c.len()).max_by_key(|&i| c[i]).unwrap()
        };
        let n = t.len();
        assert_ne!(
            top_of(&t.requests[..n / 10]),
            top_of(&t.requests[n - n / 10..]),
            "churn should displace the top object over the trace"
        );
    }

    #[test]
    fn diurnal_cycle_shifts_the_pop_mix_within_a_period() {
        let mut cfg = TraceConfig::small();
        cfg.requests = 80_000;
        cfg.dynamics = Some(crate::dynamics::DynamicsConfig {
            diurnal: Some(crate::dynamics::Diurnal {
                period: 80_000,
                amplitude: 0.6,
            }),
            flash: None,
            churn: None,
        });
        let t = Trace::synthesize(cfg, &pops(), 4);
        // Opposite phases of one period: PoP shares must move.
        let share = |reqs: &[Request], pop: u16| {
            reqs.iter().filter(|r| r.pop == pop).count() as f64 / reqs.len() as f64
        };
        let q1 = &t.requests[..20_000];
        let q3 = &t.requests[40_000..60_000];
        let delta = (share(q1, 0) - share(q3, 0)).abs();
        assert!(
            delta > 0.02,
            "diurnal PoP-share swing too small: {delta:.4}"
        );
    }

    #[test]
    fn skewed_trace_differs_across_pops() {
        let mut cfg = TraceConfig::small();
        cfg.skew = 1.0;
        let t = Trace::synthesize(cfg, &pops(), 4);
        // With full skew, the globally-ranked object 0 is no longer the top
        // object at every pop.
        let mut per_pop: Vec<std::collections::HashMap<u32, u64>> = vec![Default::default(); 3];
        for r in &t.requests {
            *per_pop[r.pop as usize].entry(r.object).or_insert(0) += 1;
        }
        let tops: Vec<u32> = per_pop
            .iter()
            .map(|m| m.iter().max_by_key(|&(_, &c)| c).map(|(&o, _)| o).unwrap())
            .collect();
        assert!(
            tops.iter().any(|&t| t != tops[0]),
            "expected different top objects per pop, got {tops:?}"
        );
    }
}
