//! Spatial popularity skew (§5.1).
//!
//! A skew of 0 means every PoP draws requests from the same global
//! popularity ranking; a skew of 1 means each PoP has an independent random
//! ranking ("the most popular object at one location may become the least
//! popular object at some other location"). Intermediate values interpolate
//! by sorting objects on a blended key of global rank and per-PoP noise.
//!
//! The paper's skew metric (§5.1, footnote 5): with `r_op` the rank of
//! object `o` at PoP `p` and `S_o = stdev_p(r_op)`,
//! `spatial skew = avg_o(S_o) / O`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-PoP popularity rankings under a spatial skew parameter.
#[derive(Debug, Clone)]
pub enum SpatialModel {
    /// Skew 0: all PoPs share the global ranking (rank == object id).
    Global,
    /// Skew > 0: explicit per-PoP permutations.
    PerPop {
        /// `rank_to_object[p][r]` = object holding rank `r` at PoP `p`.
        rank_to_object: Vec<Vec<u32>>,
    },
}

impl SpatialModel {
    /// Builds the model for `objects` objects, `pops` PoPs, and a skew
    /// parameter in `[0, 1]`. Object ids are assumed to be global-rank
    /// ordered (object 0 is globally most popular), which is how
    /// [`crate::trace`] assigns them.
    pub fn new(objects: u32, pops: u32, skew: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&skew), "skew must be in [0,1]");
        assert!(objects >= 1 && pops >= 1);
        if skew == 0.0 {
            return SpatialModel::Global;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let o = objects as usize;
        let mut rank_to_object = Vec::with_capacity(pops as usize);
        let mut keys: Vec<(f64, u32)> = Vec::with_capacity(o);
        for _ in 0..pops {
            keys.clear();
            for obj in 0..objects {
                // Blend the global rank with per-(pop, object) noise. The
                // noise amplitude scales with O so skew=1 fully randomizes.
                let noise: f64 = rng.gen::<f64>() * objects as f64;
                let key = (1.0 - skew) * obj as f64 + skew * noise;
                keys.push((key, obj));
            }
            keys.sort_by(|a, b| a.0.total_cmp(&b.0));
            rank_to_object.push(keys.iter().map(|&(_, obj)| obj).collect());
        }
        SpatialModel::PerPop { rank_to_object }
    }

    /// The object holding 0-based `rank` at `pop`.
    #[inline]
    pub fn object_for_rank(&self, pop: u32, rank: u32) -> u32 {
        match self {
            SpatialModel::Global => rank,
            SpatialModel::PerPop { rank_to_object } => rank_to_object[pop as usize][rank as usize],
        }
    }

    /// The paper's skew metric: `avg_o(stdev_p(rank_op)) / O`. Returns 0
    /// for the global model.
    pub fn measured_skew(&self) -> f64 {
        match self {
            SpatialModel::Global => 0.0,
            SpatialModel::PerPop { rank_to_object } => {
                let pops = rank_to_object.len();
                let o = rank_to_object[0].len();
                // Invert to object -> rank per pop.
                let mut sum_rank = vec![0.0f64; o];
                let mut sum_rank2 = vec![0.0f64; o];
                for ranks in rank_to_object {
                    for (r, &obj) in ranks.iter().enumerate() {
                        let r = r as f64;
                        sum_rank[obj as usize] += r;
                        sum_rank2[obj as usize] += r * r;
                    }
                }
                let p = pops as f64;
                let avg_stdev: f64 = (0..o)
                    .map(|i| {
                        let mean = sum_rank[i] / p;
                        let var = (sum_rank2[i] / p - mean * mean).max(0.0);
                        var.sqrt()
                    })
                    .sum::<f64>()
                    / o as f64;
                avg_stdev / o as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_skew_is_identity() {
        let m = SpatialModel::new(100, 4, 0.0, 1);
        for r in 0..100 {
            assert_eq!(m.object_for_rank(2, r), r);
        }
        assert_eq!(m.measured_skew(), 0.0);
    }

    #[test]
    fn rankings_are_permutations() {
        let m = SpatialModel::new(200, 5, 0.7, 9);
        for p in 0..5 {
            let mut seen = [false; 200];
            for r in 0..200 {
                let o = m.object_for_rank(p, r) as usize;
                assert!(!seen[o], "object {o} twice at pop {p}");
                seen[o] = true;
            }
        }
    }

    #[test]
    fn measured_skew_increases_with_parameter() {
        let o = 500;
        let pops = 8;
        let s_small = SpatialModel::new(o, pops, 0.2, 7).measured_skew();
        let s_big = SpatialModel::new(o, pops, 1.0, 7).measured_skew();
        assert!(s_small > 0.0);
        assert!(
            s_big > s_small,
            "skew metric not monotone: {s_small} vs {s_big}"
        );
    }

    #[test]
    fn full_skew_decorrelates_ranks() {
        // At skew 1 the expected stdev of a uniform rank across pops is
        // O/sqrt(12)-ish, so the metric should approach ~0.2-0.3.
        let m = SpatialModel::new(1000, 16, 1.0, 3);
        let s = m.measured_skew();
        assert!(s > 0.15, "skew 1 should yield large metric, got {s}");
    }

    #[test]
    fn small_skew_preserves_head() {
        // With small skew the globally top object stays near the top
        // everywhere.
        let m = SpatialModel::new(1000, 6, 0.05, 11);
        for p in 0..6 {
            let mut rank_of_obj0 = None;
            for r in 0..1000 {
                if m.object_for_rank(p, r) == 0 {
                    rank_of_obj0 = Some(r);
                    break;
                }
            }
            assert!(rank_of_obj0.unwrap() < 200);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SpatialModel::new(100, 3, 0.5, 42);
        let b = SpatialModel::new(100, 3, 0.5, 42);
        for p in 0..3 {
            for r in 0..100 {
                assert_eq!(a.object_for_rank(p, r), b.object_for_rank(p, r));
            }
        }
    }
}
