//! Zipf(α) popularity distributions.
//!
//! The `i`-th most popular of `n` objects is requested with probability
//! proportional to `1 / i^α` (§2.2). Ranks here are **0-based** (rank 0 is
//! the most popular object); the normalization uses the generalized harmonic
//! number `H_{n,α}`.

use rand::Rng;

/// A Zipf(α) distribution over `n` ranks with O(log n) inverse-CDF sampling.
///
/// # Examples
/// ```
/// use icn_workload::zipf::Zipf;
///
/// let z = Zipf::new(1_000, 1.0);
/// assert!(z.pmf(0) > z.pmf(1));               // rank 0 is most popular
/// assert!((z.mass(0, 1_000) - 1.0).abs() < 1e-9);
///
/// let mut rng = rand::thread_rng();
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    alpha: f64,
    /// `cdf[i]` = P(rank ≤ i); `cdf[n-1]` == 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n ≥ 1` ranks with exponent `alpha ≥ 0`.
    /// `alpha == 0` degenerates to the uniform distribution.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one object");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += (i as f64).powf(-alpha);
            cdf.push(acc);
        }
        let norm = acc;
        for c in cdf.iter_mut() {
            *c /= norm;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { alpha, cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the distribution has at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of the 0-based `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank < self.len());
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Probability that a request falls in ranks `0..=rank`.
    pub fn cdf(&self, rank: usize) -> f64 {
        assert!(rank < self.len());
        self.cdf[rank]
    }

    /// Probability mass of the half-open rank interval `lo..hi`.
    pub fn mass(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi <= self.len());
        if lo == hi {
            return 0.0;
        }
        let upper = self.cdf[hi - 1];
        let lower = if lo == 0 { 0.0 } else { self.cdf[lo - 1] };
        upper - lower
    }

    /// Samples a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for alpha in [0.0, 0.7, 1.0, 1.5] {
            let z = Zipf::new(1000, alpha);
            let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "alpha={alpha} total={total}");
        }
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(100, 1.1);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn ratio_matches_power_law() {
        let z = Zipf::new(100, 0.8);
        // pmf(0)/pmf(9) should be 10^0.8.
        let ratio = z.pmf(0) / z.pmf(9);
        assert!((ratio - 10f64.powf(0.8)).abs() / ratio < 1e-9);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_intervals() {
        let z = Zipf::new(50, 1.0);
        assert!((z.mass(0, 50) - 1.0).abs() < 1e-12);
        assert!((z.mass(0, 10) + z.mass(10, 50) - 1.0).abs() < 1e-12);
        assert_eq!(z.mass(7, 7), 0.0);
    }

    #[test]
    fn single_object() {
        let z = Zipf::new(1, 1.0);
        assert_eq!(z.pmf(0), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut counts = vec![0u32; 100];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Top ranks should match pmf within a few percent.
        for (r, &c) in counts.iter().enumerate().take(5) {
            let emp = c as f64 / n as f64;
            let exp = z.pmf(r);
            assert!(
                (emp - exp).abs() / exp < 0.05,
                "rank {r}: empirical {emp} vs pmf {exp}"
            );
        }
        // All samples in range (implicitly true by indexing) and every top
        // rank was hit.
        assert!(counts[0] > counts[20]);
    }
}
