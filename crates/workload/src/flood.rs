//! Request-flood (DoS) workloads (§7).
//!
//! The paper argues that "an architecture based on edge caching, such as
//! idICN, provides approximately the same hit-ratios as a pervasively
//! deployed ICN, indicating that such an edge cache deployment can provide
//! much of the same request flood protection as pervasively deployed
//! ICNs." This module generates the attack workload to test that claim:
//! a baseline trace with an interval of flood requests injected, where
//! attacker-controlled leaves hammer a victim publisher's objects.

use crate::trace::{Request, Trace, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a request-flood attack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloodConfig {
    /// Attack requests injected per background request during the flood
    /// interval (attack intensity).
    pub intensity: f64,
    /// The flood targets objects in this id range (the victim's catalog —
    /// with population-proportional origin assignment these map to one or
    /// few origin PoPs via the `origins` table).
    pub victim_objects: std::ops::Range<u32>,
    /// Fraction of leaves the attacker controls (bots), in `(0, 1]`.
    pub bot_fraction: f64,
    /// Flood interval as fractions of the trace `[start, end)` in `[0, 1]`.
    pub interval: (f64, f64),
    /// RNG seed for bot/leaf/object selection.
    pub seed: u64,
}

impl FloodConfig {
    /// A default flood: 5× intensity over the middle half of the trace,
    /// 10% of leaves are bots, targeting the given objects.
    pub fn new(victim_objects: std::ops::Range<u32>) -> Self {
        Self {
            intensity: 5.0,
            victim_objects,
            bot_fraction: 0.1,
            interval: (0.25, 0.75),
            seed: 0xdd05,
        }
    }
}

/// Injects flood requests into `base`, returning the combined trace. The
/// background requests keep their relative order; during the flood
/// interval, `intensity` attack requests are interleaved per background
/// request (in expectation), each from a random bot leaf for a random
/// victim object.
pub fn inject_flood(base: &Trace, pops: u16, leaves_per_pop: u16, cfg: &FloodConfig) -> Trace {
    assert!(cfg.intensity >= 0.0);
    assert!(!cfg.victim_objects.is_empty(), "no victim objects");
    assert!(cfg.victim_objects.end <= base.config.objects);
    assert!(cfg.bot_fraction > 0.0 && cfg.bot_fraction <= 1.0);
    let (start, end) = cfg.interval;
    assert!((0.0..=1.0).contains(&start) && start <= end && end <= 1.0);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Pick the bot set: a fixed random subset of all leaves.
    let total_leaves = pops as usize * leaves_per_pop as usize;
    let n_bots = ((total_leaves as f64 * cfg.bot_fraction).round() as usize).max(1);
    let mut all: Vec<u32> = (0..total_leaves as u32).collect();
    for i in 0..n_bots {
        let j = rng.gen_range(i..all.len());
        all.swap(i, j);
    }
    let bots = &all[..n_bots];

    let n = base.requests.len();
    let flood_lo = (n as f64 * start) as usize;
    let flood_hi = (n as f64 * end) as usize;
    let mut out = Vec::with_capacity(n + ((flood_hi - flood_lo) as f64 * cfg.intensity) as usize);
    for (i, req) in base.requests.iter().enumerate() {
        out.push(*req);
        if i >= flood_lo && i < flood_hi {
            // Poisson-ish: floor + Bernoulli remainder.
            let mut k = cfg.intensity.floor() as usize;
            if rng.gen::<f64>() < cfg.intensity.fract() {
                k += 1;
            }
            for _ in 0..k {
                let bot = bots[rng.gen_range(0..n_bots)];
                let object = rng.gen_range(cfg.victim_objects.clone());
                out.push(Request {
                    pop: (bot / leaves_per_pop as u32) as u16,
                    leaf: (bot % leaves_per_pop as u32) as u16,
                    object,
                });
            }
        }
    }
    Trace {
        config: TraceConfig {
            requests: out.len(),
            ..base.config.clone()
        },
        requests: out,
        object_sizes: base.object_sizes.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    fn base() -> Trace {
        let mut cfg = TraceConfig::small();
        cfg.requests = 10_000;
        cfg.objects = 1_000;
        Trace::synthesize(cfg, &[500, 500], 8)
    }

    #[test]
    fn flood_adds_expected_volume() {
        let b = base();
        let cfg = FloodConfig {
            intensity: 2.0,
            ..FloodConfig::new(0..10)
        };
        let t = inject_flood(&b, 2, 8, &cfg);
        // Flood interval covers half the trace at 2x -> ~+100% of half.
        let added = t.len() - b.len();
        let expected = (0.5 * 2.0 * b.len() as f64) as usize;
        let rel_err = (added as f64 - expected as f64).abs() / expected as f64;
        assert!(rel_err < 0.05, "added {added}, expected ~{expected}");
    }

    #[test]
    fn flood_requests_target_victims_from_bots() {
        let b = base();
        // Tail objects: barely requested in the background trace.
        let cfg = FloodConfig::new(990..1000);
        let t = inject_flood(&b, 2, 8, &cfg);
        // Count extra requests for victim objects vs base.
        let count = |tr: &Trace| tr.requests.iter().filter(|r| r.object >= 990).count();
        assert!(
            count(&t) > count(&b).max(1) * 10,
            "victims should be hammered: {} vs {}",
            count(&t),
            count(&b)
        );
        // All requests stay within the network bounds.
        assert!(t.requests.iter().all(|r| r.pop < 2 && r.leaf < 8));
    }

    #[test]
    fn background_order_is_preserved() {
        let b = base();
        let cfg = FloodConfig::new(0..10);
        let t = inject_flood(&b, 2, 8, &cfg);
        // The base requests appear as a subsequence of the flooded trace.
        let mut it = t.requests.iter();
        for want in &b.requests {
            assert!(
                it.any(|got| got == want),
                "base request lost from the flooded trace"
            );
        }
    }

    #[test]
    fn zero_intensity_is_identity() {
        let b = base();
        let cfg = FloodConfig {
            intensity: 0.0,
            ..FloodConfig::new(0..10)
        };
        let t = inject_flood(&b, 2, 8, &cfg);
        assert_eq!(t.requests, b.requests);
    }

    #[test]
    fn deterministic() {
        let b = base();
        let cfg = FloodConfig::new(0..10);
        let t1 = inject_flood(&b, 2, 8, &cfg);
        let t2 = inject_flood(&b, 2, 8, &cfg);
        assert_eq!(t1.requests, t2.requests);
    }
}
