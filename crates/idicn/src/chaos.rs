//! Deterministic in-process chaos layer for the idICN overlay.
//!
//! A [`ChaosProxy`] interposes on the wire between two overlay components
//! (edge proxy → reverse proxy, reverse proxy → origin, ...) and injects
//! transport faults according to a [`ChaosPolicy`]: connection resets,
//! stalls past the read deadline, bodies truncated mid-transfer, and
//! silently corrupted content bytes. The injection schedule is a **pure
//! function** of `(policy seed, connection index)` — the same SplitMix64
//! construction the simulator's fault schedule and the retry jitter use —
//! so a soak run replays the identical fault sequence every time.
//!
//! The point of the exercise (see `tests/chaos_soak.rs`): under thousands
//! of requests with every fault class firing, the overlay must never hang
//! or panic, transient faults must be absorbed by the retry/breaker
//! machinery, and **every** corrupted body must be caught by signature
//! verification before any component caches or serves it. Corruption is
//! the one fault TCP checksums and retries cannot see — catching it is
//! exactly what self-certifying names are for.

use crate::http::{self, HttpResponse};
use crate::retry::mix;
use crate::Result;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Salt distinguishing the action draw from the corrupt-position draw.
const SALT_ACTION: u64 = 0x6368_616f_0000_0001;
const SALT_BYTE: u64 = 0x6368_616f_0000_0002;

/// What the chaos layer does to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Relay the exchange untouched.
    Forward,
    /// Close the client connection without serving (TCP reset / EOF).
    Reset,
    /// Read the request, then go silent past the client's I/O deadline.
    Stall,
    /// Serve the response header with the full `Content-Length` but cut
    /// the body short — a mid-transfer connection loss.
    Truncate,
    /// Flip one content byte and serve the rest intact — the fault only
    /// cryptographic verification can catch.
    Corrupt,
}

/// Per-connection fault rates, decided by a seeded pure hash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Seed of the injection schedule; equal seeds replay equal faults.
    pub seed: u64,
    /// Probability of [`ChaosAction::Reset`].
    pub reset_rate: f64,
    /// Probability of [`ChaosAction::Stall`].
    pub stall_rate: f64,
    /// Probability of [`ChaosAction::Truncate`].
    pub truncate_rate: f64,
    /// Probability of [`ChaosAction::Corrupt`].
    pub corrupt_rate: f64,
}

impl ChaosPolicy {
    /// A policy that never injects anything (pure pass-through).
    pub fn calm(seed: u64) -> Self {
        Self {
            seed,
            reset_rate: 0.0,
            stall_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// Every fault class at the same per-connection rate.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            reset_rate: rate,
            stall_rate: rate,
            truncate_rate: rate,
            corrupt_rate: rate,
        }
    }

    /// A uniform draw in `[0, 1)` from `(seed, index, salt)`.
    fn draw(&self, index: u64, salt: u64) -> f64 {
        let z = mix(self.seed ^ salt ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The action for connection `index` — pure in `(seed, index)`.
    pub fn decide(&self, index: u64) -> ChaosAction {
        let u = self.draw(index, SALT_ACTION);
        let mut edge = self.reset_rate;
        if u < edge {
            return ChaosAction::Reset;
        }
        edge += self.stall_rate;
        if u < edge {
            return ChaosAction::Stall;
        }
        edge += self.truncate_rate;
        if u < edge {
            return ChaosAction::Truncate;
        }
        edge += self.corrupt_rate;
        if u < edge {
            return ChaosAction::Corrupt;
        }
        ChaosAction::Forward
    }

    /// Which body byte a [`ChaosAction::Corrupt`] on connection `index`
    /// flips, for a body of `len` bytes (`len > 0`).
    pub fn corrupt_position(&self, index: u64, len: usize) -> usize {
        (mix(self.seed ^ SALT_BYTE ^ index) % len.max(1) as u64) as usize
    }
}

/// Injection counters, one per fault class actually delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Connections accepted (and scheduled) so far.
    pub connections: u64,
    /// Exchanges relayed untouched (including injections that degenerated
    /// to pass-through, e.g. corrupting an empty or non-2xx response).
    pub forwards: u64,
    /// Connections reset before serving.
    pub resets: u64,
    /// Connections stalled past the I/O deadline.
    pub stalls: u64,
    /// Responses cut short mid-body.
    pub truncates: u64,
    /// Responses delivered with one flipped content byte.
    pub corruptions: u64,
}

struct Inner {
    upstream: SocketAddr,
    policy: ChaosPolicy,
    next_index: AtomicU64,
    connections: AtomicU64,
    forwards: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
    truncates: AtomicU64,
    corruptions: AtomicU64,
}

/// A fault-injecting HTTP forwarder in front of one upstream component.
#[derive(Clone)]
pub struct ChaosProxy {
    inner: Arc<Inner>,
}

/// A running chaos proxy; shuts down on drop (same contract as
/// [`http::HttpServer`]).
pub struct ChaosServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosServer {
    /// The bound loopback address clients should talk to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ChaosProxy {
    /// A chaos layer forwarding to `upstream` under `policy`.
    pub fn new(upstream: SocketAddr, policy: ChaosPolicy) -> Self {
        Self {
            inner: Arc::new(Inner {
                upstream,
                policy,
                next_index: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                forwards: AtomicU64::new(0),
                resets: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
                truncates: AtomicU64::new(0),
                corruptions: AtomicU64::new(0),
            }),
        }
    }

    /// Point-in-time injection counters.
    pub fn stats(&self) -> ChaosStats {
        let i = &self.inner;
        ChaosStats {
            connections: i.connections.load(Ordering::SeqCst),
            forwards: i.forwards.load(Ordering::SeqCst),
            resets: i.resets.load(Ordering::SeqCst),
            stalls: i.stalls.load(Ordering::SeqCst),
            truncates: i.truncates.load(Ordering::SeqCst),
            corruptions: i.corruptions.load(Ordering::SeqCst),
        }
    }

    /// Binds a fresh loopback port and starts interposing. One thread per
    /// connection, exactly like [`http::serve`] — these are loopback test
    /// harness services.
    pub fn serve(&self) -> Result<ChaosServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let inner = self.inner.clone();
        let accept_thread = std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let inner = inner.clone();
                        std::thread::spawn(move || handle_connection(&inner, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Same 1 ms accept poll as `http::serve` — chaos
                        // sits on every soak request's critical path.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ChaosServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

fn handle_connection(inner: &Inner, stream: TcpStream) {
    let index = inner.next_index.fetch_add(1, Ordering::SeqCst);
    bump(&inner.connections);
    let action = inner.policy.decide(index);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(http::io_timeout()));
    let _ = stream.set_write_timeout(Some(http::io_timeout()));

    if action == ChaosAction::Reset {
        // Wait for the first request byte, then close with the rest of the
        // request unread — the kernel answers the client with RST, which
        // surfaces as a retryable I/O error, exactly like a crashed peer.
        bump(&inner.resets);
        let mut byte = [0u8; 1];
        let _ = (&stream).read(&mut byte);
        return; // drop closes with unread data pending
    }

    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    let Ok(Some(req)) = http::read_request(&mut reader) else {
        return;
    };

    if action == ChaosAction::Stall {
        // Hold the request past the client's deadline, then vanish. The
        // client must unblock via its own read timeout, never via us.
        bump(&inner.stalls);
        std::thread::sleep(http::io_timeout() + Duration::from_millis(50));
        return;
    }

    let resp = match http::request_once(inner.upstream, &req) {
        Ok(r) => r,
        Err(e) => HttpResponse::new(502, e.to_string().into_bytes()),
    };

    // Truncation and corruption only make sense on a healthy body; an
    // injection that lands on an empty or non-2xx response degenerates to
    // pass-through and is counted as a forward, keeping the counters'
    // invariant exact: every counted corruption flipped a real byte.
    match action {
        ChaosAction::Truncate if resp.is_success() && resp.body.len() >= 2 => {
            bump(&inner.truncates);
            let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
            for (n, v) in resp.headers.iter() {
                if !n.eq_ignore_ascii_case("content-length") {
                    head.push_str(&format!("{n}: {v}\r\n"));
                }
            }
            head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
            let _ = writer.write_all(head.as_bytes());
            let _ = writer.write_all(&resp.body[..resp.body.len() / 2]);
            let _ = writer.flush();
            // Drop: the client sees EOF mid-body — a truncated transfer.
        }
        ChaosAction::Corrupt if resp.is_success() && !resp.body.is_empty() => {
            bump(&inner.corruptions);
            let mut resp = resp;
            let pos = inner.policy.corrupt_position(index, resp.body.len());
            resp.body[pos] ^= 0xa5;
            let _ = http::write_response(&mut writer, &resp);
        }
        _ => {
            bump(&inner.forwards);
            let _ = http::write_response(&mut writer, &resp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_and_index() {
        let p = ChaosPolicy::uniform(42, 0.1);
        let q = ChaosPolicy::uniform(42, 0.1);
        for i in 0..10_000 {
            assert_eq!(p.decide(i), q.decide(i));
        }
        let shifted = ChaosPolicy::uniform(43, 0.1);
        assert!(
            (0..10_000).any(|i| p.decide(i) != shifted.decide(i)),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn calm_policy_always_forwards() {
        let p = ChaosPolicy::calm(7);
        assert!((0..10_000).all(|i| p.decide(i) == ChaosAction::Forward));
    }

    #[test]
    fn uniform_rates_hit_every_class() {
        let p = ChaosPolicy::uniform(1, 0.1);
        let mut seen = [0u32; 5];
        for i in 0..10_000 {
            let k = match p.decide(i) {
                ChaosAction::Forward => 0,
                ChaosAction::Reset => 1,
                ChaosAction::Stall => 2,
                ChaosAction::Truncate => 3,
                ChaosAction::Corrupt => 4,
            };
            seen[k] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all classes drawn: {seen:?}");
        // 60% of connections should pass untouched (±5 points).
        assert!((5_500..6_500).contains(&seen[0]), "forward share: {seen:?}");
    }

    #[test]
    fn corrupt_position_is_in_bounds_and_deterministic() {
        let p = ChaosPolicy::uniform(3, 0.25);
        for i in 0..1_000 {
            for len in [1usize, 2, 7, 4096] {
                let a = p.corrupt_position(i, len);
                assert!(a < len);
                assert_eq!(a, p.corrupt_position(i, len));
            }
        }
    }

    #[test]
    fn calm_proxy_is_transparent() {
        let upstream = http::serve(Arc::new(|req: &crate::http::HttpRequest| {
            HttpResponse::ok(format!("echo {}", req.target).into_bytes())
        }))
        .unwrap();
        let chaos = ChaosProxy::new(upstream.addr(), ChaosPolicy::calm(5));
        let srv = chaos.serve().unwrap();
        for path in ["/a", "/b", "/c"] {
            let resp = http::http_get(srv.addr(), path, &[]).unwrap();
            assert_eq!(resp.body, format!("echo {path}").into_bytes());
        }
        let stats = chaos.stats();
        assert_eq!(stats.connections, 3);
        assert_eq!(stats.forwards, 3);
        assert_eq!(
            stats.resets + stats.stalls + stats.truncates + stats.corruptions,
            0
        );
        srv.shutdown();
        upstream.shutdown();
    }
}
