//! DONA-style flat self-certifying names (§6.1).
//!
//! A content name is `L.P` where `P` is the cryptographic hash of the
//! publisher's public key (here: of the MSS Merkle root) and `L` is a label
//! the publisher assigns. For DNS backward compatibility the name maps to
//! `L.P32.idicn.org`, where `P32` is the base32 encoding of the digest —
//! 52 characters for SHA-256, under the 63-character DNS label limit (the
//! paper notes this rules out SHA-512-sized digests).

use crate::crypto::Digest;

/// The hash of a publisher's public key — the self-certifying part of a
/// name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Principal(pub Digest);

/// A full content name `L.P`.
///
/// # Examples
/// ```
/// use idicn::name::{ContentName, Principal};
/// use idicn::crypto::sha256::digest;
///
/// let p = Principal(digest(b"publisher public key"));
/// let name = ContentName::new("ubuntu-iso", p).unwrap();
/// let fqdn = name.to_fqdn();
/// assert!(fqdn.starts_with("ubuntu-iso.") && fqdn.ends_with(".idicn.org"));
/// assert_eq!(ContentName::parse(&fqdn), Some(name));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ContentName {
    /// The publisher-assigned label `L`.
    pub label: String,
    /// The publisher principal `P`.
    pub principal: Principal,
}

/// The DNS suffix anchoring the idICN namespace.
pub const IDICN_SUFFIX: &str = "idicn.org";

const B32_ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// Base32-encodes bytes (RFC 4648 alphabet, lowercase, no padding).
pub fn base32_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut acc: u64 = 0;
    let mut bits = 0;
    for &b in data {
        acc = (acc << 8) | b as u64;
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(B32_ALPHABET[((acc >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(B32_ALPHABET[((acc << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes the output of [`base32_encode`]; `None` on invalid characters or
/// inconsistent length.
pub fn base32_decode(s: &str) -> Option<Vec<u8>> {
    let mut acc: u64 = 0;
    let mut bits = 0;
    let mut out = Vec::with_capacity(s.len() * 5 / 8);
    for c in s.bytes() {
        let v = match c {
            b'a'..=b'z' => c - b'a',
            b'A'..=b'Z' => c - b'A',
            b'2'..=b'7' => c - b'2' + 26,
            _ => return None,
        };
        acc = (acc << 5) | v as u64;
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    // Leftover bits must be zero padding.
    if bits > 0 && (acc & ((1 << bits) - 1)) != 0 {
        return None;
    }
    Some(out)
}

impl Principal {
    /// Encodes as a 52-character DNS-safe base32 label.
    pub fn to_label(&self) -> String {
        base32_encode(&self.0)
    }

    /// Parses a base32 label back into a principal.
    pub fn from_label(label: &str) -> Option<Self> {
        let bytes = base32_decode(label)?;
        let digest: Digest = bytes.try_into().ok()?;
        Some(Principal(digest))
    }
}

impl ContentName {
    /// Creates a name, validating the label (DNS label rules: 1–63 chars,
    /// alphanumerics and hyphens, no leading/trailing hyphen).
    pub fn new(label: &str, principal: Principal) -> Option<Self> {
        if !valid_label(label) {
            return None;
        }
        Some(Self {
            label: label.to_string(),
            principal,
        })
    }

    /// The canonical `L.P` textual form (P in base32).
    pub fn to_flat(&self) -> String {
        format!("{}.{}", self.label, self.principal.to_label())
    }

    /// The DNS-compatible FQDN `L.P.idicn.org`.
    pub fn to_fqdn(&self) -> String {
        format!("{}.{}", self.to_flat(), IDICN_SUFFIX)
    }

    /// Parses either the flat `L.P` form or the `L.P.idicn.org` FQDN.
    pub fn parse(s: &str) -> Option<Self> {
        let flat = s.strip_suffix(&format!(".{IDICN_SUFFIX}")).unwrap_or(s);
        let (label, p32) = flat.split_once('.')?;
        let principal = Principal::from_label(p32)?;
        ContentName::new(label, principal)
    }

    /// The bytes that a publisher signs for this name + content digest
    /// binding (name registration and content authenticity both sign this).
    pub fn binding_bytes(&self, content_digest: &Digest) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.label.len() + 1 + 32 + 32);
        out.extend_from_slice(self.label.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.principal.0);
        out.extend_from_slice(content_digest);
        out
    }
}

fn valid_label(label: &str) -> bool {
    !label.is_empty()
        && label.len() <= 63
        && label
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-')
        && !label.starts_with('-')
        && !label.ends_with('-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::sha256::digest;

    fn principal() -> Principal {
        Principal(digest(b"some publisher key"))
    }

    #[test]
    fn base32_roundtrip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            let enc = base32_encode(data);
            assert_eq!(base32_decode(&enc).unwrap(), data, "{enc}");
        }
    }

    #[test]
    fn base32_known_vectors() {
        // RFC 4648 test vectors, lowercased, padding stripped.
        assert_eq!(base32_encode(b"foobar"), "mzxw6ytboi");
        assert_eq!(base32_encode(b"fo"), "mzxq");
    }

    #[test]
    fn base32_rejects_garbage() {
        assert!(base32_decode("has space").is_none());
        assert!(base32_decode("0189").is_none()); // 0,1,8,9 not in alphabet
        assert!(base32_decode("b").is_none()); // nonzero padding bits
    }

    #[test]
    fn principal_label_is_dns_sized() {
        let p = principal();
        let label = p.to_label();
        assert_eq!(label.len(), 52);
        assert!(label.len() <= 63, "must fit a DNS label");
        assert_eq!(Principal::from_label(&label), Some(p));
    }

    #[test]
    fn name_roundtrip_flat_and_fqdn() {
        let name = ContentName::new("ubuntu-iso", principal()).unwrap();
        let flat = name.to_flat();
        let fqdn = name.to_fqdn();
        assert!(fqdn.ends_with(".idicn.org"));
        assert_eq!(ContentName::parse(&flat), Some(name.clone()));
        assert_eq!(ContentName::parse(&fqdn), Some(name));
    }

    #[test]
    fn invalid_labels_rejected() {
        let p = principal();
        assert!(ContentName::new("", p).is_none());
        assert!(ContentName::new("-leading", p).is_none());
        assert!(ContentName::new("trailing-", p).is_none());
        assert!(ContentName::new("has.dot", p).is_none());
        assert!(ContentName::new(&"x".repeat(64), p).is_none());
        assert!(ContentName::new(&"x".repeat(63), p).is_some());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ContentName::parse("nodot").is_none());
        assert!(ContentName::parse("label.notbase32!!!").is_none());
        // Valid base32 but wrong digest length.
        assert!(ContentName::parse("label.mzxw6ytboi").is_none());
    }

    #[test]
    fn binding_bytes_distinguish_all_fields() {
        let p = principal();
        let n1 = ContentName::new("a", p).unwrap();
        let n2 = ContentName::new("b", p).unwrap();
        let d1 = digest(b"content1");
        let d2 = digest(b"content2");
        let b = n1.binding_bytes(&d1);
        assert_ne!(b, n2.binding_bytes(&d1), "label must matter");
        assert_ne!(b, n1.binding_bytes(&d2), "content must matter");
    }
}
