//! Request IDs, structured access logging, and `/metrics` exposition for
//! the idICN pipeline.
//!
//! Every request entering the overlay at the edge proxy gets a process-wide
//! unique request ID, carried hop to hop in the [`REQUEST_ID_HEADER`]
//! header (edge proxy → resolver → reverse proxy → origin) and echoed back
//! in every response, so one client-visible ID stitches together the access
//! logs of all four components. Each component appends one [`AccessEntry`]
//! per handled request to its [`AccessLog`] — a JSONL line carrying the
//! request ID, upstream, attempt count, breaker state, latency, and
//! outcome — kept in a bounded in-memory ring and optionally streamed to a
//! file.
//!
//! [`metrics_response`] renders a component's [`icn_obs::Registry`] as a
//! Prometheus `/metrics` page (text exposition format 0.0.4).

use crate::http::HttpResponse;
use icn_obs::json::Value;
use icn_obs::{render_prometheus, Registry, PROM_CONTENT_TYPE};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// The hop-to-hop request correlation header.
pub const REQUEST_ID_HEADER: &str = "X-IdICN-Request-Id";

/// Access-log lines retained in memory per component.
pub const ACCESS_LOG_CAPACITY: usize = 256;

/// Returns a process-wide unique request ID: a random-looking per-process
/// prefix (so IDs from different runs don't collide in aggregated logs)
/// plus a monotonic counter.
pub fn next_request_id() -> String {
    static SEED: AtomicU64 = AtomicU64::new(0);
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // SplitMix64 of time ^ pid: cheap, and only uniqueness matters.
        let mut z = (t ^ (u64::from(std::process::id()) << 32)).wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        seed = (z ^ (z >> 31)) | 1; // never 0, so init runs once
        SEED.store(seed, Ordering::Relaxed);
    }
    format!(
        "{seed:016x}-{:08x}",
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// One handled request, as logged by a pipeline component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEntry {
    /// The hop-spanning correlation ID.
    pub request_id: String,
    /// Which component handled the request (`edge_proxy`, `resolver`,
    /// `reverse_proxy`, `origin`).
    pub component: &'static str,
    /// The request target (path or absolute-form URI).
    pub target: String,
    /// The upstream URL the content came from, when one was contacted.
    pub upstream: Option<String>,
    /// Upstream fetch attempts made for this request (0 for local serves).
    pub attempts: u64,
    /// Upstream locations skipped because their circuit breaker was open.
    pub breaker_skips: u64,
    /// Wall-clock handling time in nanoseconds.
    pub latency_ns: u64,
    /// HTTP status returned to the caller.
    pub status: u16,
    /// Coarse outcome (`hit`, `miss`, `exact`, `not_found`, `error`, ...).
    pub outcome: &'static str,
}

impl AccessEntry {
    /// The entry as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("request_id".into(), Value::Str(self.request_id.clone()));
        m.insert("component".into(), Value::Str(self.component.into()));
        m.insert("target".into(), Value::Str(self.target.clone()));
        m.insert(
            "upstream".into(),
            match &self.upstream {
                Some(u) => Value::Str(u.clone()),
                None => Value::Null,
            },
        );
        m.insert("attempts".into(), Value::UInt(self.attempts));
        m.insert("breaker_skips".into(), Value::UInt(self.breaker_skips));
        m.insert("latency_ns".into(), Value::UInt(self.latency_ns));
        m.insert("status".into(), Value::UInt(u64::from(self.status)));
        m.insert("outcome".into(), Value::Str(self.outcome.into()));
        Value::Obj(m).to_json()
    }
}

struct Sink {
    recent: VecDeque<String>,
    file: Option<std::io::BufWriter<std::fs::File>>,
    lines: u64,
}

/// A per-component structured access log: a bounded in-memory ring of
/// recent JSONL lines (always on, inspectable in tests and panics) plus an
/// optional append-to-file stream.
pub struct AccessLog {
    sink: Mutex<Sink>,
}

impl Default for AccessLog {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessLog {
    /// An in-memory-only log.
    pub fn new() -> Self {
        Self {
            sink: Mutex::new(Sink {
                recent: VecDeque::with_capacity(ACCESS_LOG_CAPACITY),
                file: None,
                lines: 0,
            }),
        }
    }

    /// Additionally streams every line to `path` (JSONL, appended).
    pub fn stream_to_file(&self, path: &str) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        self.sink.lock().file = Some(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Appends one entry.
    pub fn log(&self, entry: &AccessEntry) {
        let line = entry.to_json();
        let mut sink = self.sink.lock();
        sink.lines += 1;
        if sink.recent.len() == ACCESS_LOG_CAPACITY {
            sink.recent.pop_front();
        }
        if let Some(f) = &mut sink.file {
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        sink.recent.push_back(line);
    }

    /// The retained recent lines, oldest first.
    pub fn recent(&self) -> Vec<String> {
        self.sink.lock().recent.iter().cloned().collect()
    }

    /// Total lines logged (including ones evicted from the ring).
    pub fn len(&self) -> u64 {
        self.sink.lock().lines
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Renders `registry` as a Prometheus `/metrics` response, labelling every
/// sample with `component="<component>"`.
pub fn metrics_response(registry: &Registry, component: &str) -> HttpResponse {
    let body = render_prometheus(&registry.snapshot(), &[("component", component)]);
    let mut resp = HttpResponse::ok(body.into_bytes());
    resp.headers.set("Content-Type", PROM_CONTENT_TYPE);
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use icn_obs::json::parse;

    fn entry(id: &str) -> AccessEntry {
        AccessEntry {
            request_id: id.to_string(),
            component: "edge_proxy",
            target: "/fetch/x".into(),
            upstream: Some("http://127.0.0.1:9/fetch/x".into()),
            attempts: 2,
            breaker_skips: 1,
            latency_ns: 12_345,
            status: 200,
            outcome: "miss",
        }
    }

    #[test]
    fn request_ids_are_unique_and_nonempty() {
        let ids: Vec<String> = (0..100).map(|_| next_request_id()).collect();
        for (i, a) in ids.iter().enumerate() {
            assert!(!a.is_empty());
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn entries_serialize_to_parseable_json() {
        let line = entry("rid-1").to_json();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("request_id").and_then(Value::as_str), Some("rid-1"));
        assert_eq!(
            v.get("component").and_then(Value::as_str),
            Some("edge_proxy")
        );
        assert_eq!(v.get("attempts").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("breaker_skips").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("status").and_then(Value::as_u64), Some(200));
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("miss"));
        assert_eq!(
            v.get("upstream").and_then(Value::as_str),
            Some("http://127.0.0.1:9/fetch/x")
        );
    }

    #[test]
    fn ring_bounds_memory_but_counts_everything() {
        let log = AccessLog::new();
        for i in 0..ACCESS_LOG_CAPACITY + 5 {
            log.log(&entry(&format!("rid-{i}")));
        }
        assert_eq!(log.len(), (ACCESS_LOG_CAPACITY + 5) as u64);
        let recent = log.recent();
        assert_eq!(recent.len(), ACCESS_LOG_CAPACITY);
        assert!(recent[0].contains("rid-5"), "{}", recent[0]);
    }

    #[test]
    fn file_stream_appends_jsonl() {
        let dir = std::env::temp_dir().join(format!("idicn-access-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let log = AccessLog::new();
        log.stream_to_file(path.to_str().unwrap()).unwrap();
        log.log(&entry("rid-a"));
        log.log(&entry("rid-b"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_response_is_prometheus_text() {
        let r = Registry::new();
        r.counter("proxy.requests").add(3);
        let resp = metrics_response(&r, "edge_proxy");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("content-type"), Some(PROM_CONTENT_TYPE));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(
            body.contains("proxy_requests{component=\"edge_proxy\"} 3"),
            "{body}"
        );
    }
}
