//! The content-provider reverse proxy (Figure 11, steps P1/P2/5/6).
//!
//! The reverse proxy holds the publisher's signing identity. On publish it
//! fetches the object from the origin, computes piece digests, signs the
//! name/content binding, caches the result, and registers the name with the
//! resolver. On fetch it serves the cached object with the Metalink
//! metadata attached (routing to the origin if it has no fresh copy of a
//! previously published object).

use crate::access::{metrics_response, next_request_id, AccessEntry, AccessLog, REQUEST_ID_HEADER};
use crate::chunk::ChunkedDigests;
use crate::crypto::mss::Identity;
use crate::crypto::sha256::digest;
use crate::error::{ProxyError, ProxyResult};
use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::metalink::Metadata;
use crate::name::{ContentName, Principal};
use crate::resolver::{registration_bytes, Registration, ResolverClient};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Default Metalink piece size (64 KiB).
pub const DEFAULT_PIECE_SIZE: usize = 64 * 1024;

/// A cached object: shared content bytes + the signed metadata.
type CachedObject = (Arc<Vec<u8>>, Metadata);

struct Inner {
    identity: Mutex<Identity>,
    principal: Principal,
    origin_addr: SocketAddr,
    resolver: ResolverClient,
    /// label → (content, signed metadata). The "fresh copy" cache.
    cache: RwLock<HashMap<String, CachedObject>>,
    /// Published labels and their signed metadata survive cache eviction:
    /// signatures are generated once at publish time (§6, "generate
    /// signatures ... cache them").
    published: RwLock<HashMap<String, Metadata>>,
    addr: Mutex<Option<SocketAddr>>,
    obs: icn_obs::Registry,
    access: AccessLog,
}

/// A running reverse proxy bound to one origin, one resolver, and one
/// publisher identity.
#[derive(Clone)]
pub struct ReverseProxy {
    inner: Arc<Inner>,
}

impl ReverseProxy {
    /// Creates a reverse proxy for `origin_addr` using `identity` to sign
    /// and `resolver` to register names.
    pub fn new(identity: Identity, origin_addr: SocketAddr, resolver: ResolverClient) -> Self {
        let principal = Principal(identity.principal_digest());
        Self {
            inner: Arc::new(Inner {
                identity: Mutex::new(identity),
                principal,
                origin_addr,
                resolver,
                cache: RwLock::new(HashMap::new()),
                published: RwLock::new(HashMap::new()),
                addr: Mutex::new(None),
                obs: icn_obs::Registry::new(),
                access: AccessLog::new(),
            }),
        }
    }

    /// The structured JSONL access log (one entry per HTTP request).
    pub fn access_log(&self) -> &AccessLog {
        &self.inner.access
    }

    /// Telemetry snapshot: `rp.publishes`, `rp.serves`, `rp.fresh_hits`,
    /// `rp.origin_refetches`, `rp.divergence_refusals`.
    pub fn telemetry(&self) -> icn_obs::Snapshot {
        self.inner.obs.snapshot()
    }

    /// The publisher principal this proxy signs for.
    pub fn principal(&self) -> Principal {
        self.inner.principal
    }

    /// Starts serving; must be called before [`ReverseProxy::publish`] so
    /// registrations can point at a real address.
    pub fn serve(&self) -> ProxyResult<HttpServer> {
        let me = self.clone();
        let server = http::serve(Arc::new(move |req: &HttpRequest| me.handle(req)))?;
        *self.inner.addr.lock() = Some(server.addr());
        Ok(server)
    }

    /// The URL other components fetch this proxy's content from.
    pub fn fetch_url(&self, name: &ContentName) -> ProxyResult<String> {
        let addr = self.inner.addr.lock().ok_or(ProxyError::NotServing)?;
        Ok(format!("http://{addr}/fetch/{}", name.to_flat()))
    }

    /// Publishes a label: fetch from origin (P1), sign, cache, and register
    /// the name with the resolver (P2). Returns the self-certifying name.
    pub fn publish(&self, label: &str) -> ProxyResult<ContentName> {
        let name = ContentName::new(label, self.inner.principal)
            .ok_or_else(|| ProxyError::InvalidLabel(label.to_string()))?;
        let content = self.fetch_origin(label, &next_request_id())?;
        let digests = ChunkedDigests::compute(&content, DEFAULT_PIECE_SIZE);
        let mut id = self.inner.identity.lock();
        let binding = name.binding_bytes(&digests.full);
        let signature = id.sign(&digest(&binding));
        let metadata = Metadata {
            name: name.clone(),
            digests,
            publisher_root: id.root(),
            signature,
            mirrors: vec![format!("http://{}/content/{label}", self.inner.origin_addr)],
        };
        drop(id);

        // Register L.P -> this proxy with the resolver (step P2).
        let location = self.fetch_url(&name)?;
        let locations = vec![location];
        let mut id = self.inner.identity.lock();
        let reg_sig = id.sign(&digest(&registration_bytes(&name, &locations)));
        let root = id.root();
        drop(id);
        self.inner.resolver.register(&Registration {
            name: name.clone(),
            locations,
            publisher_root: root,
            signature: reg_sig,
        })?;

        self.inner
            .published
            .write()
            .insert(label.to_string(), metadata.clone());
        self.inner
            .cache
            .write()
            .insert(label.to_string(), (Arc::new(content), metadata));
        self.inner.obs.counter("rp.publishes").inc();
        Ok(name)
    }

    /// Drops the cached copy of a label (forces the next fetch to route to
    /// the origin — step 5).
    pub fn evict(&self, label: &str) {
        self.inner.cache.write().remove(label);
    }

    fn fetch_origin(&self, label: &str, request_id: &str) -> ProxyResult<Vec<u8>> {
        let resp = http::http_get(
            self.inner.origin_addr,
            &format!("/content/{label}"),
            &[(REQUEST_ID_HEADER, request_id)],
        )?;
        if !resp.is_success() {
            return Err(ProxyError::NotFound(format!("origin has no {label:?}")));
        }
        Ok(resp.body)
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        // Metrics scrapes bypass counters and the access log so that
        // monitoring does not pollute the numbers it reads.
        if req.method == "GET" && req.target == "/metrics" {
            return metrics_response(&self.inner.obs, "reverse_proxy");
        }
        let started = Instant::now();
        let request_id = req
            .headers
            .get(REQUEST_ID_HEADER)
            .unwrap_or("-")
            .to_string();
        let mut upstream = None;
        let mut attempts = 0;
        let (mut resp, outcome) = self.handle_inner(req, &request_id, &mut upstream, &mut attempts);
        if request_id != "-" {
            resp.headers.set(REQUEST_ID_HEADER, &request_id);
        }
        self.inner.access.log(&AccessEntry {
            request_id,
            component: "reverse_proxy",
            target: req.target.clone(),
            upstream,
            attempts,
            breaker_skips: 0,
            latency_ns: started.elapsed().as_nanos() as u64,
            status: resp.status,
            outcome,
        });
        resp
    }

    fn handle_inner(
        &self,
        req: &HttpRequest,
        request_id: &str,
        upstream: &mut Option<String>,
        attempts: &mut u64,
    ) -> (HttpResponse, &'static str) {
        if req.method != "GET" {
            return (HttpResponse::new(400, b"only GET".to_vec()), "bad_request");
        }
        let Some(flat) = req.target.strip_prefix("/fetch/") else {
            return (HttpResponse::not_found("unknown path"), "unknown");
        };
        let Some(name) = ContentName::parse(flat) else {
            return (HttpResponse::new(400, b"bad name".to_vec()), "bad_request");
        };
        if name.principal != self.inner.principal {
            return (
                HttpResponse::new(403, b"not our principal".to_vec()),
                "forbidden",
            );
        }
        // Fresh copy? Serve it (step 6). Otherwise route to the origin
        // (step 5) — but only for published (signed) labels.
        self.inner.obs.counter("rp.serves").inc();
        let cached = self.inner.cache.read().get(&name.label).cloned();
        let mut outcome = "fresh_hit";
        let (content, metadata) = match cached {
            Some((c, m)) => {
                self.inner.obs.counter("rp.fresh_hits").inc();
                (c, m)
            }
            None => {
                let Some(metadata) = self.inner.published.read().get(&name.label).cloned() else {
                    return (HttpResponse::not_found("not published"), "not_published");
                };
                self.inner.obs.counter("rp.origin_refetches").inc();
                *attempts += 1;
                *upstream = Some(format!(
                    "http://{}/content/{}",
                    self.inner.origin_addr, name.label
                ));
                match self.fetch_origin(&name.label, request_id) {
                    Ok(content) => {
                        // Refuse to serve origin bytes that no longer match
                        // the published signature.
                        if !metadata.digests.verify_full(&content) {
                            self.inner.obs.counter("rp.divergence_refusals").inc();
                            let err = ProxyError::Diverged {
                                label: name.label.clone(),
                            };
                            return (
                                HttpResponse::new(502, err.to_string().into_bytes()),
                                "diverged",
                            );
                        }
                        let content = Arc::new(content);
                        self.inner
                            .cache
                            .write()
                            .insert(name.label.clone(), (content.clone(), metadata.clone()));
                        outcome = "origin_refetch";
                        (content, metadata)
                    }
                    Err(e) => {
                        return (
                            HttpResponse::new(502, e.to_string().into_bytes()),
                            "origin_error",
                        )
                    }
                }
            }
        };
        let mut resp = HttpResponse::ok(content.as_ref().clone());
        metadata.to_headers(&mut resp.headers);
        (resp, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::OriginServer;
    use crate::resolver::{Resolution, Resolver};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Rig {
        origin: OriginServer,
        _origin_srv: HttpServer,
        resolver: Resolver,
        _resolver_srv: HttpServer,
        rp: ReverseProxy,
        _rp_srv: HttpServer,
    }

    fn rig() -> Rig {
        let origin = OriginServer::new();
        let origin_srv = origin.serve().unwrap();
        let resolver = Resolver::new();
        let resolver_srv = resolver.serve().unwrap();
        let identity = Identity::generate(&mut StdRng::seed_from_u64(21), 3);
        let rp = ReverseProxy::new(
            identity,
            origin_srv.addr(),
            ResolverClient::new(resolver_srv.addr()),
        );
        let rp_srv = rp.serve().unwrap();
        Rig {
            origin,
            _origin_srv: origin_srv,
            resolver,
            _resolver_srv: resolver_srv,
            rp,
            _rp_srv: rp_srv,
        }
    }

    #[test]
    fn publish_signs_and_registers() {
        let rig = rig();
        rig.origin.add_content("page", b"<html>hi</html>".to_vec());
        let name = rig.rp.publish("page").unwrap();
        // Registered with the resolver.
        match rig.resolver.resolve(&name) {
            Some(Resolution::Locations(locs)) => {
                assert_eq!(locs.len(), 1);
                assert!(locs[0].contains("/fetch/"));
            }
            other => panic!("unexpected resolution {other:?}"),
        }
        // Fetch returns verifiable content.
        let url = rig.rp.fetch_url(&name).unwrap();
        let (addr, path) = crate::proxy::parse_http_url(&url).unwrap();
        let resp = http::http_get(addr, &path, &[]).unwrap();
        assert_eq!(resp.status, 200);
        let meta = Metadata::from_headers(&resp.headers).unwrap();
        meta.verify(&resp.body).unwrap();
        assert_eq!(resp.body, b"<html>hi</html>");
    }

    #[test]
    fn unpublished_label_is_404() {
        let rig = rig();
        rig.origin.add_content("secret", b"not signed yet".to_vec());
        let name = ContentName::new("secret", rig.rp.principal()).unwrap();
        let url = rig.rp.fetch_url(&name).unwrap();
        let (addr, path) = crate::proxy::parse_http_url(&url).unwrap();
        let resp = http::http_get(addr, &path, &[]).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn eviction_routes_back_to_origin() {
        let rig = rig();
        rig.origin.add_content("doc", b"stable bytes".to_vec());
        let name = rig.rp.publish("doc").unwrap();
        rig.rp.evict("doc");
        let url = rig.rp.fetch_url(&name).unwrap();
        let (addr, path) = crate::proxy::parse_http_url(&url).unwrap();
        let resp = http::http_get(addr, &path, &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"stable bytes");
        let snap = rig.rp.telemetry();
        assert_eq!(snap.counters["rp.publishes"], 1);
        assert_eq!(snap.counters["rp.serves"], 1);
        assert_eq!(snap.counters["rp.origin_refetches"], 1);
        assert!(!snap.counters.contains_key("rp.fresh_hits"));
    }

    #[test]
    fn diverged_origin_content_is_refused() {
        let rig = rig();
        rig.origin.add_content("mutable", b"version 1".to_vec());
        let name = rig.rp.publish("mutable").unwrap();
        // Origin silently changes the bytes; the cached signature no longer
        // matches, so serving from origin must fail closed.
        rig.origin.add_content("mutable", b"version 2".to_vec());
        rig.rp.evict("mutable");
        let url = rig.rp.fetch_url(&name).unwrap();
        let (addr, path) = crate::proxy::parse_http_url(&url).unwrap();
        let resp = http::http_get(addr, &path, &[]).unwrap();
        assert_eq!(resp.status, 502);
        assert_eq!(rig.rp.telemetry().counters["rp.divergence_refusals"], 1);
    }

    #[test]
    fn foreign_principal_refused() {
        let rig = rig();
        let foreign =
            ContentName::new("anything", Principal(digest(b"someone else entirely"))).unwrap();
        let url = rig.rp.fetch_url(&foreign).unwrap();
        let (addr, path) = crate::proxy::parse_http_url(&url).unwrap();
        let resp = http::http_get(addr, &path, &[]).unwrap();
        assert_eq!(resp.status, 403);
    }
}
