//! The flat name-resolution system (§6.1).
//!
//! An SFR-style resolver: publishers REGISTER `L.P → locations` records,
//! clients RESOLVE names. Registrations are cryptographically authorized —
//! the resolver checks that the registration is signed by the key behind
//! `P` ("these resolvers need only check for cryptographic correctness").
//! Lookup first tries the exact `L.P` entry, then falls back to a
//! `P`-level entry, which may point at a finer-grained resolver
//! (delegation).
//!
//! The wire protocol is HTTP (POST /register, GET /resolve) so the whole
//! overlay speaks one protocol.

use crate::access::{metrics_response, AccessEntry, AccessLog, REQUEST_ID_HEADER};
use crate::crypto::mss::MssSignature;
use crate::crypto::sha256::digest;
use crate::crypto::{from_hex, to_hex, Digest};
use crate::http::{self, HttpRequest, HttpResponse};
use crate::name::{ContentName, Principal};
use crate::{Error, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// What a resolution returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Locations (absolute URLs) serving the exact name.
    Locations(Vec<String>),
    /// No exact entry; a `P`-level entry delegates to another resolver or
    /// default location.
    Delegation(String),
}

/// A signed registration record.
pub struct Registration {
    /// The name being registered.
    pub name: ContentName,
    /// Serving locations (absolute URLs).
    pub locations: Vec<String>,
    /// The publisher's Merkle root (must hash to the name's principal).
    pub publisher_root: Digest,
    /// Signature over [`registration_bytes`].
    pub signature: MssSignature,
}

/// The byte string a publisher signs to authorize a registration.
pub fn registration_bytes(name: &ContentName, locations: &[String]) -> Vec<u8> {
    let mut out = name.to_flat().into_bytes();
    for l in locations {
        out.push(0);
        out.extend_from_slice(l.as_bytes());
    }
    out
}

#[derive(Default)]
struct Store {
    exact: HashMap<(Principal, String), Vec<String>>,
    by_principal: HashMap<Principal, String>,
}

/// The in-process resolver state, shared with its HTTP server.
#[derive(Clone, Default)]
pub struct Resolver {
    store: Arc<RwLock<Store>>,
    obs: Arc<icn_obs::Registry>,
    access: Arc<AccessLog>,
}

impl Resolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self {
            access: Arc::new(AccessLog::new()),
            ..Self::default()
        }
    }

    /// The structured JSONL access log (one entry per HTTP request).
    pub fn access_log(&self) -> &AccessLog {
        &self.access
    }

    /// Telemetry snapshot: `resolver.registrations`,
    /// `resolver.rejected_registrations`, `resolver.lookups`,
    /// `resolver.exact`, `resolver.delegations`, `resolver.not_found`.
    pub fn telemetry(&self) -> icn_obs::Snapshot {
        self.obs.snapshot()
    }

    /// Applies a signed registration after verifying it.
    pub fn register(&self, reg: &Registration) -> Result<()> {
        if digest(&reg.publisher_root) != reg.name.principal.0 {
            self.obs.counter("resolver.rejected_registrations").inc();
            return Err(Error::Verification(
                "registration root does not match principal".into(),
            ));
        }
        let msg = digest(&registration_bytes(&reg.name, &reg.locations));
        if !reg.signature.verify(&msg, &reg.publisher_root) {
            self.obs.counter("resolver.rejected_registrations").inc();
            return Err(Error::Verification("registration signature invalid".into()));
        }
        self.obs.counter("resolver.registrations").inc();
        let mut store = self.store.write();
        store.exact.insert(
            (reg.name.principal, reg.name.label.clone()),
            reg.locations.clone(),
        );
        // The most recent registration's first location doubles as the
        // P-level fallback (a pointer to "a resolver that has entries for
        // individual L.P names" — here, the publisher's reverse proxy).
        if let Some(first) = reg.locations.first() {
            store.by_principal.insert(reg.name.principal, first.clone());
        }
        Ok(())
    }

    /// Resolves a name: exact match first, then `P`-level delegation.
    pub fn resolve(&self, name: &ContentName) -> Option<Resolution> {
        self.obs.counter("resolver.lookups").inc();
        let store = self.store.read();
        if let Some(locs) = store.exact.get(&(name.principal, name.label.clone())) {
            self.obs.counter("resolver.exact").inc();
            return Some(Resolution::Locations(locs.clone()));
        }
        let delegated = store
            .by_principal
            .get(&name.principal)
            .map(|loc| Resolution::Delegation(loc.clone()));
        self.obs
            .counter(if delegated.is_some() {
                "resolver.delegations"
            } else {
                "resolver.not_found"
            })
            .inc();
        delegated
    }

    /// Number of exact entries (for monitoring/tests).
    pub fn len(&self) -> usize {
        self.store.read().exact.len()
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves this resolver over HTTP on a fresh loopback port.
    pub fn serve(&self) -> Result<http::HttpServer> {
        let me = self.clone();
        http::serve(Arc::new(move |req: &HttpRequest| me.handle(req)))
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        // Metrics scrapes bypass counters and the access log so that
        // monitoring does not pollute the numbers it reads.
        if req.method == "GET" && req.target == "/metrics" {
            return metrics_response(&self.obs, "resolver");
        }
        let started = Instant::now();
        // The resolver never mints request IDs — it correlates with the
        // edge proxy's ID when one arrives, and logs "-" otherwise.
        let request_id = req
            .headers
            .get(REQUEST_ID_HEADER)
            .unwrap_or("-")
            .to_string();
        let (mut resp, outcome) = self.handle_inner(req);
        if request_id != "-" {
            resp.headers.set(REQUEST_ID_HEADER, &request_id);
        }
        self.access.log(&AccessEntry {
            request_id,
            component: "resolver",
            target: req.target.clone(),
            upstream: None,
            attempts: 0,
            breaker_skips: 0,
            latency_ns: started.elapsed().as_nanos() as u64,
            status: resp.status,
            outcome,
        });
        resp
    }

    fn handle_inner(&self, req: &HttpRequest) -> (HttpResponse, &'static str) {
        match (req.method.as_str(), req.target.as_str()) {
            ("POST", "/register") => match parse_registration(&req.body) {
                Ok(reg) => match self.register(&reg) {
                    Ok(()) => (HttpResponse::new(201, b"registered".to_vec()), "registered"),
                    Err(e) => (
                        HttpResponse::new(403, e.to_string().into_bytes()),
                        "rejected",
                    ),
                },
                Err(e) => (
                    HttpResponse::new(400, e.to_string().into_bytes()),
                    "bad_request",
                ),
            },
            ("GET", target) if target.starts_with("/resolve/") => {
                let flat = &target["/resolve/".len()..];
                match ContentName::parse(flat) {
                    None => (HttpResponse::new(400, b"bad name".to_vec()), "bad_request"),
                    Some(name) => match self.resolve(&name) {
                        Some(Resolution::Locations(locs)) => {
                            let mut resp = HttpResponse::ok(locs.join("\n").into_bytes());
                            resp.headers.set("X-IdICN-Resolution", "exact");
                            (resp, "exact")
                        }
                        Some(Resolution::Delegation(loc)) => {
                            let mut resp = HttpResponse::ok(loc.into_bytes());
                            resp.headers.set("X-IdICN-Resolution", "delegation");
                            (resp, "delegation")
                        }
                        None => (HttpResponse::not_found("no such name"), "not_found"),
                    },
                }
            }
            _ => (HttpResponse::not_found("unknown endpoint"), "unknown"),
        }
    }
}

/// Wire format for a registration body: line-oriented,
/// `name\nroot_hex\nsig_hex\nlocation...`.
pub fn serialize_registration(reg: &Registration) -> Vec<u8> {
    let mut out = format!(
        "{}\n{}\n{}\n",
        reg.name.to_flat(),
        to_hex(&reg.publisher_root),
        to_hex(&reg.signature.to_bytes()),
    )
    .into_bytes();
    out.extend_from_slice(reg.locations.join("\n").as_bytes());
    out
}

fn parse_registration(body: &[u8]) -> Result<Registration> {
    let text =
        std::str::from_utf8(body).map_err(|_| Error::Protocol("non-UTF8 registration".into()))?;
    let mut lines = text.lines();
    let name = lines
        .next()
        .and_then(ContentName::parse)
        .ok_or_else(|| Error::Protocol("bad name line".into()))?;
    let publisher_root: Digest = lines
        .next()
        .and_then(from_hex)
        .and_then(|v| v.try_into().ok())
        .ok_or_else(|| Error::Protocol("bad root line".into()))?;
    let signature = lines
        .next()
        .and_then(from_hex)
        .and_then(|b| MssSignature::from_bytes(&b))
        .ok_or_else(|| Error::Protocol("bad signature line".into()))?;
    let locations: Vec<String> = lines
        .map(|l| l.to_string())
        .filter(|l| !l.is_empty())
        .collect();
    if locations.is_empty() {
        return Err(Error::Protocol("no locations".into()));
    }
    Ok(Registration {
        name,
        locations,
        publisher_root,
        signature,
    })
}

/// Client-side handle to a remote resolver.
#[derive(Debug, Clone, Copy)]
pub struct ResolverClient {
    addr: SocketAddr,
}

impl ResolverClient {
    /// Points at a resolver served by [`Resolver::serve`].
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// The resolver's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a signed record.
    ///
    /// A resolver that cannot be reached surfaces as
    /// [`Error::Unreachable`] / [`Error::Timeout`] (the transport failed);
    /// a resolver that *refuses* the record surfaces as
    /// [`Error::Protocol`]. Callers queue-and-retry the former but must
    /// not retry the latter.
    pub fn register(&self, reg: &Registration) -> Result<()> {
        let req = HttpRequest::post("/register", serialize_registration(reg));
        let resp = http::request_once(self.addr, &req)?;
        if resp.status == 201 {
            Ok(())
        } else {
            Err(Error::Protocol(format!(
                "registration refused: {} {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )))
        }
    }

    /// Resolves a name.
    ///
    /// The two failure classes are deliberately distinct: an unknown name
    /// is [`Error::NotFound`] (authoritative — stop looking), while a dead
    /// or stalled resolver is [`Error::Unreachable`] / [`Error::Timeout`]
    /// (the *service* failed — fall back to cached registrations, see
    /// [`crate::proxy::EdgeProxy`]). Conflating them used to make a
    /// resolver outage look like every name vanishing at once.
    pub fn resolve(&self, name: &ContentName) -> Result<Resolution> {
        self.resolve_with_id(name, None)
    }

    /// Like [`ResolverClient::resolve`], forwarding the edge proxy's
    /// request-correlation ID in [`REQUEST_ID_HEADER`] so the resolver's
    /// access log lines join up with the proxy's.
    pub fn resolve_with_id(
        &self,
        name: &ContentName,
        request_id: Option<&str>,
    ) -> Result<Resolution> {
        let headers: Vec<(&str, &str)> = request_id
            .map(|r| vec![(REQUEST_ID_HEADER, r)])
            .unwrap_or_default();
        let resp = http::http_get(self.addr, &format!("/resolve/{}", name.to_flat()), &headers)?;
        match resp.status {
            200 => {
                let body = String::from_utf8_lossy(&resp.body).to_string();
                if resp.headers.get("X-IdICN-Resolution") == Some("delegation") {
                    Ok(Resolution::Delegation(body))
                } else {
                    Ok(Resolution::Locations(
                        body.lines().map(|l| l.to_string()).collect(),
                    ))
                }
            }
            404 => Err(Error::NotFound(name.to_flat())),
            s => Err(Error::Protocol(format!("resolver returned {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::mss::Identity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity() -> Identity {
        Identity::generate(&mut StdRng::seed_from_u64(11), 3)
    }

    fn signed_registration(id: &mut Identity, label: &str, locations: Vec<String>) -> Registration {
        let name = ContentName::new(label, Principal(id.principal_digest())).unwrap();
        let msg = digest(&registration_bytes(&name, &locations));
        Registration {
            signature: id.sign(&msg),
            publisher_root: id.root(),
            name,
            locations,
        }
    }

    #[test]
    fn register_and_resolve_exact() {
        let mut id = identity();
        let r = Resolver::new();
        let reg = signed_registration(&mut id, "video1", vec!["http://127.0.0.1:1/a".into()]);
        r.register(&reg).unwrap();
        assert_eq!(
            r.resolve(&reg.name),
            Some(Resolution::Locations(vec!["http://127.0.0.1:1/a".into()]))
        );
    }

    #[test]
    fn principal_fallback_delegates() {
        let mut id = identity();
        let r = Resolver::new();
        let reg = signed_registration(&mut id, "known", vec!["http://127.0.0.1:1/rp".into()]);
        r.register(&reg).unwrap();
        // A different label under the same principal falls back to P-level.
        let other = ContentName::new("unknown", reg.name.principal).unwrap();
        assert_eq!(
            r.resolve(&other),
            Some(Resolution::Delegation("http://127.0.0.1:1/rp".into()))
        );
        // A different principal resolves to nothing.
        let foreign = ContentName::new("x", Principal(digest(b"other"))).unwrap();
        assert_eq!(r.resolve(&foreign), None);
        let snap = r.telemetry();
        assert_eq!(snap.counters["resolver.registrations"], 1);
        assert_eq!(snap.counters["resolver.lookups"], 2);
        assert_eq!(snap.counters["resolver.delegations"], 1);
        assert_eq!(snap.counters["resolver.not_found"], 1);
    }

    #[test]
    fn forged_registration_rejected() {
        let mut id = identity();
        let mut attacker = Identity::generate(&mut StdRng::seed_from_u64(99), 1);
        let r = Resolver::new();
        // Attacker signs a record claiming the victim's principal.
        let name = ContentName::new("steal", Principal(id.principal_digest())).unwrap();
        let locations = vec!["http://evil/".to_string()];
        let msg = digest(&registration_bytes(&name, &locations));
        let forged = Registration {
            signature: attacker.sign(&msg),
            publisher_root: attacker.root(), // hash won't match the principal
            name: name.clone(),
            locations: locations.clone(),
        };
        assert!(matches!(r.register(&forged), Err(Error::Verification(_))));
        // Even with the correct root, a bad signature fails.
        let victim_root = id.root();
        let mut tampered_sig = id.sign(&msg);
        tampered_sig.leaf_index ^= 1;
        let forged2 = Registration {
            signature: tampered_sig,
            publisher_root: victim_root,
            name,
            locations,
        };
        assert!(matches!(r.register(&forged2), Err(Error::Verification(_))));
        assert!(r.is_empty());
        assert_eq!(r.telemetry().counters["resolver.rejected_registrations"], 2);
    }

    #[test]
    fn re_registration_updates_locations() {
        let mut id = identity();
        let r = Resolver::new();
        let reg1 = signed_registration(&mut id, "obj", vec!["http://a/".into()]);
        r.register(&reg1).unwrap();
        let reg2 = signed_registration(&mut id, "obj", vec!["http://b/".into()]);
        r.register(&reg2).unwrap();
        assert_eq!(
            r.resolve(&reg2.name),
            Some(Resolution::Locations(vec!["http://b/".into()]))
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn http_end_to_end() {
        let mut id = identity();
        let resolver = Resolver::new();
        let server = resolver.serve().unwrap();
        let client = ResolverClient::new(server.addr());

        let reg = signed_registration(&mut id, "httpobj", vec!["http://127.0.0.1:1/x".into()]);
        client.register(&reg).unwrap();
        match client.resolve(&reg.name).unwrap() {
            Resolution::Locations(locs) => assert_eq!(locs, vec!["http://127.0.0.1:1/x"]),
            other => panic!("unexpected {other:?}"),
        }
        // Unknown name is NotFound over the wire too.
        let missing = ContentName::new("nope", Principal(digest(b"nobody"))).unwrap();
        assert!(matches!(client.resolve(&missing), Err(Error::NotFound(_))));
        server.shutdown();
    }

    #[test]
    fn dead_resolver_is_unreachable_not_not_found() {
        let mut id = identity();
        let resolver = Resolver::new();
        let server = resolver.serve().unwrap();
        let addr = server.addr();
        let reg = signed_registration(&mut id, "gone", vec!["http://127.0.0.1:1/x".into()]);
        server.shutdown(); // the service dies; the name was never the problem
        let client = ResolverClient::new(addr);
        let err = client.resolve(&reg.name).unwrap_err();
        assert!(
            matches!(err, Error::Unreachable(_) | Error::Timeout(_)),
            "expected a transport-class error, got {err:?}"
        );
        let err = client.register(&reg).unwrap_err();
        assert!(
            matches!(err, Error::Unreachable(_) | Error::Timeout(_)),
            "register must also distinguish transport failure, got {err:?}"
        );
    }

    #[test]
    fn malformed_wire_registrations_rejected() {
        let resolver = Resolver::new();
        let server = resolver.serve().unwrap();
        let resp = http::request_once(
            server.addr(),
            &HttpRequest::post("/register", b"garbage".to_vec()),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        let resp = http::http_get(server.addr(), "/resolve/not-a-name", &[]).unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown();
    }
}
