//! The edge proxy cache (Figure 11, steps 2/3/4/7).
//!
//! Clients send ordinary HTTP requests through the proxy (configured via
//! WPAD, see [`crate::wpad`]). The proxy serves cached objects immediately;
//! on a miss it resolves the name, fetches from the reverse proxy (or a
//! mirror), **verifies the content signature before caching** — a proxy
//! never serves bytes it could not authenticate — and responds with the
//! Metalink headers intact so clients can re-verify end-to-end.

use crate::access::{metrics_response, next_request_id, AccessEntry, AccessLog, REQUEST_ID_HEADER};
use crate::error::{ProxyError, ProxyResult};
use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::metalink::Metadata;
use crate::name::ContentName;
use crate::resolver::{Resolution, ResolverClient};
use crate::retry::{self, CircuitBreaker, RetryPolicy};
use icn_obs::{Counter, Gauge, Registry, Snapshot, TimerHandle};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parses `http://host:port/path` into a socket address and path.
/// Only numeric loopback-style authorities are supported (the overlay uses
/// explicit addresses; DNS is exactly what idICN routes around).
pub fn parse_http_url(url: &str) -> ProxyResult<(SocketAddr, String)> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| ProxyError::BadUrl {
            url: url.to_string(),
            reason: "not an http URL",
        })?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_string()),
        None => (rest, "/".to_string()),
    };
    let addr: SocketAddr = authority.parse().map_err(|_| ProxyError::BadUrl {
        url: url.to_string(),
        reason: "bad authority (need numeric host:port)",
    })?;
    Ok((addr, path))
}

struct CacheEntry {
    content: Arc<Vec<u8>>,
    metadata: Metadata,
    last_used: u64,
}

/// Named proxy counters (replaces the old anonymous `(hits, misses)`
/// tuple). All values are point-in-time reads of live atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxyStats {
    /// Requests served from the edge cache.
    pub hits: u64,
    /// Requests that had to fetch from upstream.
    pub misses: u64,
    /// Upstream responses rejected because signature verification failed
    /// (or the metadata named a different object). Never cached or served.
    pub verify_failures: u64,
    /// HTTP requests accepted by [`EdgeProxy::serve`]'s handler.
    pub requests: u64,
    /// Requests currently being handled.
    pub in_flight: i64,
    /// Upstream fetch attempts beyond the first for a given location
    /// (transient transport failures retried with backoff).
    pub retries: u64,
    /// Times an upstream's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Upstream locations skipped because their circuit was open.
    pub breaker_skips: u64,
    /// Resolutions answered from the cached-registration table because the
    /// resolver itself was unreachable.
    pub resolver_fallbacks: u64,
}

struct Inner {
    resolver: ResolverClient,
    cache: RwLock<HashMap<String, CacheEntry>>,
    capacity: usize,
    clock: AtomicU64,
    obs: Registry,
    hits: Counter,
    misses: Counter,
    verify_failures: Counter,
    requests: Counter,
    in_flight: Gauge,
    latency: TimerHandle,
    addr: Mutex<Option<SocketAddr>>,
    // Failure-path machinery (PR 4): bounded retries toward upstreams, a
    // per-URL circuit breaker, and the last successful resolution per name
    // so resolver outages degrade to possibly-stale answers instead of
    // hard failures.
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    known_locations: RwLock<HashMap<String, Vec<String>>>,
    retries: Counter,
    breaker_opens: Counter,
    breaker_skips: Counter,
    resolver_fallbacks: Counter,
    access: AccessLog,
}

/// Side-band accounting for one upstream fetch, reported in the access
/// log: which upstream finally served, how many transport attempts were
/// made, and how many locations the open circuit breaker skipped.
#[derive(Default)]
struct FetchTrace {
    upstream: Option<String>,
    attempts: u64,
    breaker_skips: u64,
}

/// A caching, verifying edge proxy.
#[derive(Clone)]
pub struct EdgeProxy {
    inner: Arc<Inner>,
}

impl EdgeProxy {
    /// Creates a proxy holding at most `capacity` objects, with the default
    /// failure policy (3 attempts per upstream, breaker opens after 3
    /// consecutive failures for 1 s).
    pub fn new(resolver: ResolverClient, capacity: usize) -> Self {
        Self::new_with(
            resolver,
            capacity,
            RetryPolicy::default(),
            CircuitBreaker::new(3, Duration::from_secs(1)),
        )
    }

    /// Creates a proxy with an explicit retry policy and circuit breaker
    /// (tests use tight policies; production callers tune for their RTTs).
    pub fn new_with(
        resolver: ResolverClient,
        capacity: usize,
        retry: RetryPolicy,
        breaker: CircuitBreaker,
    ) -> Self {
        let obs = Registry::new();
        let hits = obs.counter("proxy.cache_hits");
        let misses = obs.counter("proxy.cache_misses");
        let verify_failures = obs.counter("proxy.verify_failures");
        let requests = obs.counter("proxy.requests");
        let in_flight = obs.gauge("proxy.in_flight");
        let latency = obs.timer_handle("proxy.request");
        let retries = obs.counter("proxy.retries");
        let breaker_opens = obs.counter("proxy.breaker_opens");
        let breaker_skips = obs.counter("proxy.breaker_skips");
        let resolver_fallbacks = obs.counter("proxy.resolver_fallbacks");
        Self {
            inner: Arc::new(Inner {
                resolver,
                cache: RwLock::new(HashMap::new()),
                capacity,
                clock: AtomicU64::new(0),
                obs,
                hits,
                misses,
                verify_failures,
                requests,
                in_flight,
                latency,
                addr: Mutex::new(None),
                retry,
                breaker,
                known_locations: RwLock::new(HashMap::new()),
                retries,
                breaker_opens,
                breaker_skips,
                resolver_fallbacks,
                access: AccessLog::new(),
            }),
        }
    }

    /// The structured JSONL access log (one entry per handled request).
    pub fn access_log(&self) -> &AccessLog {
        &self.inner.access
    }

    /// Starts serving on a fresh loopback port.
    pub fn serve(&self) -> ProxyResult<HttpServer> {
        let me = self.clone();
        let server = http::serve(Arc::new(move |req: &HttpRequest| me.handle(req)))?;
        *self.inner.addr.lock() = Some(server.addr());
        Ok(server)
    }

    /// Counters so far.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            hits: self.inner.hits.get(),
            misses: self.inner.misses.get(),
            verify_failures: self.inner.verify_failures.get(),
            requests: self.inner.requests.get(),
            in_flight: self.inner.in_flight.get(),
            retries: self.inner.retries.get(),
            breaker_opens: self.inner.breaker_opens.get(),
            breaker_skips: self.inner.breaker_skips.get(),
            resolver_fallbacks: self.inner.resolver_fallbacks.get(),
        }
    }

    /// Full telemetry snapshot: the counters of [`EdgeProxy::stats`] plus
    /// the request-latency histogram (`proxy.request`, nanoseconds).
    pub fn telemetry(&self) -> Snapshot {
        self.inner.obs.snapshot()
    }

    /// Number of cached objects.
    pub fn cached_objects(&self) -> usize {
        self.inner.cache.read().len()
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        // The metrics scrape is observability, not traffic: it bypasses
        // the request counters and the access log.
        if req.method == "GET" && req.target == "/metrics" {
            return metrics_response(&self.inner.obs, "edge_proxy");
        }
        self.inner.requests.inc();
        self.inner.in_flight.inc();
        let _latency = self.inner.latency.start();
        let started = Instant::now();
        // The request ID enters here: reuse a client-supplied one, mint
        // one otherwise; either way it travels in REQUEST_ID_HEADER to the
        // resolver, the reverse proxy, and the origin, and is echoed back.
        let request_id = req
            .headers
            .get(REQUEST_ID_HEADER)
            .map(str::to_string)
            .unwrap_or_else(next_request_id);
        let mut trace = FetchTrace::default();
        let (mut resp, outcome) = self.handle_inner(req, &request_id, &mut trace);
        resp.headers.set(REQUEST_ID_HEADER, request_id.clone());
        self.inner.access.log(&AccessEntry {
            request_id,
            component: "edge_proxy",
            target: req.target.clone(),
            upstream: trace.upstream,
            attempts: trace.attempts,
            breaker_skips: trace.breaker_skips,
            latency_ns: started.elapsed().as_nanos() as u64,
            status: resp.status,
            outcome,
        });
        self.inner.in_flight.dec();
        resp
    }

    fn handle_inner(
        &self,
        req: &HttpRequest,
        request_id: &str,
        trace: &mut FetchTrace,
    ) -> (HttpResponse, &'static str) {
        if req.method != "GET" {
            return (HttpResponse::new(400, b"only GET".to_vec()), "bad_request");
        }
        let Some(name) = Self::name_from_request(req) else {
            return (
                HttpResponse::new(400, b"cannot extract idICN name".to_vec()),
                "bad_request",
            );
        };
        match self.fetch_traced(&name, request_id, trace) {
            Ok((content, metadata, was_hit)) => {
                // Range support: a resuming client may ask for a slice.
                let (status, body, range_hdr) = match req.headers.get("range") {
                    Some(r) => match http::parse_range(r, content.len()) {
                        Some((s, e)) => (
                            206,
                            content[s..e].to_vec(),
                            Some(http::content_range(s, e, content.len())),
                        ),
                        None => return (HttpResponse::new(416, Vec::new()), "bad_range"),
                    },
                    None => (200, content.as_ref().clone(), None),
                };
                let mut resp = HttpResponse::new(status, body);
                metadata.to_headers(&mut resp.headers);
                if let Some(cr) = range_hdr {
                    resp.headers.set("Content-Range", cr);
                }
                resp.headers
                    .set("X-Cache", if was_hit { "HIT" } else { "MISS" });
                (resp, if was_hit { "hit" } else { "miss" })
            }
            Err(ProxyError::NotFound(m)) => (HttpResponse::not_found(&m), "not_found"),
            // Transport-level upstream failures are "try again later", not
            // "bad gateway": 503 tells clients the outage is transient.
            Err(e @ (ProxyError::Timeout(_) | ProxyError::Unreachable(_))) => (
                HttpResponse::new(503, e.to_string().into_bytes()),
                "unavailable",
            ),
            Err(e) => (HttpResponse::new(502, e.to_string().into_bytes()), "error"),
        }
    }

    /// Extracts the content name from a proxy-style request: absolute-form
    /// URI (`GET http://L.P.idicn.org/ HTTP/1.1`), Host header, or the
    /// explicit `/fetch/L.P` form.
    fn name_from_request(req: &HttpRequest) -> Option<ContentName> {
        if let Some(rest) = req.target.strip_prefix("http://") {
            let host = rest.split('/').next()?;
            return ContentName::parse(host);
        }
        if let Some(flat) = req.target.strip_prefix("/fetch/") {
            return ContentName::parse(flat);
        }
        req.headers.get("host").and_then(ContentName::parse)
    }

    /// Returns `(content, metadata, was_cache_hit)`.
    pub fn fetch(&self, name: &ContentName) -> ProxyResult<(Arc<Vec<u8>>, Metadata, bool)> {
        self.fetch_traced(name, &next_request_id(), &mut FetchTrace::default())
    }

    /// [`EdgeProxy::fetch`] carrying an explicit request ID downstream and
    /// reporting upstream attempt accounting into `trace`.
    fn fetch_traced(
        &self,
        name: &ContentName,
        request_id: &str,
        trace: &mut FetchTrace,
    ) -> ProxyResult<(Arc<Vec<u8>>, Metadata, bool)> {
        let key = name.to_flat();
        {
            let mut cache = self.inner.cache.write();
            if let Some(e) = cache.get_mut(&key) {
                e.last_used = self.inner.clock.fetch_add(1, Ordering::Relaxed);
                self.inner.hits.inc();
                return Ok((e.content.clone(), e.metadata.clone(), true));
            }
        }
        self.inner.misses.inc();
        let (content, metadata) = self.fetch_remote(name, request_id, trace)?;
        // Verify BEFORE caching or serving.
        if let Err(e) = metadata.verify(&content) {
            self.inner.verify_failures.inc();
            return Err(e.into());
        }
        if metadata.name != *name {
            self.inner.verify_failures.inc();
            return Err(ProxyError::Verification(
                "response metadata names a different object".into(),
            ));
        }
        let content = Arc::new(content);
        let mut cache = self.inner.cache.write();
        if self.inner.capacity > 0 {
            if cache.len() >= self.inner.capacity && !cache.contains_key(&key) {
                // Evict the least recently used entry.
                if let Some(victim) = cache
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    cache.remove(&victim);
                }
            }
            cache.insert(
                key,
                CacheEntry {
                    content: content.clone(),
                    metadata: metadata.clone(),
                    last_used: self.inner.clock.fetch_add(1, Ordering::Relaxed),
                },
            );
        }
        Ok((content, metadata, false))
    }

    /// Resolves `name` to candidate upstream URLs, remembering each
    /// successful answer. When the resolver itself is unreachable (down,
    /// not "name unknown"), the last known locations for the name are
    /// returned instead — a possibly-stale answer beats no answer, and the
    /// signature check still rejects wrong bytes.
    fn resolve_locations(&self, name: &ContentName, request_id: &str) -> ProxyResult<Vec<String>> {
        let key = name.to_flat();
        match self.inner.resolver.resolve_with_id(name, Some(request_id)) {
            Ok(Resolution::Locations(locs)) => {
                self.inner.known_locations.write().insert(key, locs.clone());
                Ok(locs)
            }
            Ok(Resolution::Delegation(base)) => {
                // P-level fallback: ask the delegated proxy for the object.
                let (addr, _) = parse_http_url(&base)?;
                Ok(vec![format!("http://{addr}/fetch/{}", name.to_flat())])
            }
            Err(e) if retry::is_transient(&e) => {
                match self.inner.known_locations.read().get(&key) {
                    Some(cached) => {
                        self.inner.resolver_fallbacks.inc();
                        Ok(cached.clone())
                    }
                    None => Err(e.into()),
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    fn fetch_remote(
        &self,
        name: &ContentName,
        request_id: &str,
        trace: &mut FetchTrace,
    ) -> ProxyResult<(Vec<u8>, Metadata)> {
        let locations = self.resolve_locations(name, request_id)?;
        let mut last_err = ProxyError::NotFound(name.to_flat());
        for url in locations {
            // Parse BEFORE consulting the breaker: `allows` may claim the
            // single half-open trial slot, and a claimed probe must always
            // reach a record_success/record_failure below — bailing out on
            // a bad URL after claiming would wedge the slot for a cooldown.
            let (addr, path) = match parse_http_url(&url) {
                Ok(parsed) => parsed,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            if !self.inner.breaker.allows(&url) {
                self.inner.breaker_skips.inc();
                trace.breaker_skips += 1;
                continue;
            }
            let attempt = self.inner.retry.run(|attempt| {
                if attempt > 0 {
                    self.inner.retries.inc();
                }
                trace.attempts += 1;
                http::http_get(addr, &path, &[(REQUEST_ID_HEADER, request_id)])
            });
            match attempt {
                Ok(resp) if resp.is_success() => {
                    self.inner.breaker.record_success(&url);
                    let metadata = Metadata::from_headers(&resp.headers)?;
                    trace.upstream = Some(url);
                    return Ok((resp.body, metadata));
                }
                Ok(resp) => {
                    // The upstream is alive and answering; its refusal is
                    // authoritative, not a circuit-breaker event.
                    self.inner.breaker.record_success(&url);
                    last_err = ProxyError::UpstreamStatus {
                        url,
                        status: resp.status,
                    };
                }
                Err(e) => {
                    if self.inner.breaker.record_failure(&url) {
                        self.inner.breaker_opens.inc();
                    }
                    last_err = e.into();
                }
            }
        }
        Err(last_err)
    }
}

/// A minimal idICN-aware client: fetches a name through a proxy and
/// re-verifies the content end-to-end (the paper's "the client or the
/// proxy should authenticate" — this client does both).
pub fn fetch_verified(
    proxy_addr: SocketAddr,
    name: &ContentName,
) -> ProxyResult<(Vec<u8>, Metadata, bool)> {
    let resp = http::http_get(proxy_addr, &format!("http://{}/", name.to_fqdn()), &[])?;
    if !resp.is_success() {
        return Err(ProxyError::NotFound(format!(
            "{}: proxy returned {}",
            name.to_flat(),
            resp.status
        )));
    }
    let metadata = Metadata::from_headers(&resp.headers)?;
    metadata.verify(&resp.body)?;
    let hit = resp.headers.get("X-Cache") == Some("HIT");
    Ok((resp.body, metadata, hit))
}

/// How [`fetch_verified_with_fallback`] obtained the content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Served from the edge proxy's cache.
    ProxyHit,
    /// Served via the edge proxy, which fetched upstream.
    ProxyMiss,
    /// The proxy was unreachable (or timed out); the client resolved the
    /// name itself and fetched directly from a registered location.
    DirectOrigin,
}

/// [`fetch_verified`] with the client half of the degradation ladder: if
/// the *proxy* fails at the transport level (process killed, network
/// partition), the client resolves the name itself and fetches directly
/// from a registered location — losing the shared cache but not
/// availability. Content is signature-verified on every path; a name-level
/// failure (`NotFound`, bad signature) is authoritative and never triggers
/// the fallback.
pub fn fetch_verified_with_fallback(
    proxy_addr: SocketAddr,
    resolver: &ResolverClient,
    name: &ContentName,
) -> ProxyResult<(Vec<u8>, Metadata, FetchOutcome)> {
    match fetch_verified(proxy_addr, name) {
        Ok((body, metadata, hit)) => {
            let outcome = if hit {
                FetchOutcome::ProxyHit
            } else {
                FetchOutcome::ProxyMiss
            };
            Ok((body, metadata, outcome))
        }
        Err(ProxyError::Timeout(_) | ProxyError::Unreachable(_)) => {
            let locations = match resolver.resolve(name)? {
                Resolution::Locations(locs) => locs,
                Resolution::Delegation(base) => {
                    let (addr, _) = parse_http_url(&base)?;
                    vec![format!("http://{addr}/fetch/{}", name.to_flat())]
                }
            };
            let mut last_err = ProxyError::NotFound(name.to_flat());
            for url in locations {
                match parse_http_url(&url)
                    .and_then(|(addr, path)| Ok(http::http_get(addr, &path, &[])?))
                {
                    Ok(resp) if resp.is_success() => {
                        let metadata = Metadata::from_headers(&resp.headers)?;
                        metadata.verify(&resp.body)?;
                        if metadata.name != *name {
                            return Err(ProxyError::Verification(
                                "response metadata names a different object".into(),
                            ));
                        }
                        return Ok((resp.body, metadata, FetchOutcome::DirectOrigin));
                    }
                    Ok(resp) => {
                        last_err = ProxyError::UpstreamStatus {
                            url,
                            status: resp.status,
                        };
                    }
                    Err(e) => last_err = e,
                }
            }
            Err(last_err)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::mss::Identity;
    use crate::origin::OriginServer;
    use crate::resolver::Resolver;
    use crate::reverse_proxy::ReverseProxy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Rig {
        origin: OriginServer,
        _origin_srv: HttpServer,
        _resolver_srv: HttpServer,
        rp: ReverseProxy,
        _rp_srv: HttpServer,
        proxy: EdgeProxy,
        proxy_srv: HttpServer,
    }

    fn rig(capacity: usize) -> Rig {
        let origin = OriginServer::new();
        let origin_srv = origin.serve().unwrap();
        let resolver = Resolver::new();
        let resolver_srv = resolver.serve().unwrap();
        let rc = ResolverClient::new(resolver_srv.addr());
        let identity = Identity::generate(&mut StdRng::seed_from_u64(33), 4);
        let rp = ReverseProxy::new(identity, origin_srv.addr(), rc);
        let rp_srv = rp.serve().unwrap();
        let proxy = EdgeProxy::new(rc, capacity);
        let proxy_srv = proxy.serve().unwrap();
        Rig {
            origin,
            _origin_srv: origin_srv,
            _resolver_srv: resolver_srv,
            rp,
            _rp_srv: rp_srv,
            proxy,
            proxy_srv,
        }
    }

    #[test]
    fn url_parsing() {
        let (addr, path) = parse_http_url("http://127.0.0.1:8080/a/b").unwrap();
        assert_eq!(addr.port(), 8080);
        assert_eq!(path, "/a/b");
        let (_, path) = parse_http_url("http://127.0.0.1:80").unwrap();
        assert_eq!(path, "/");
        assert!(parse_http_url("https://127.0.0.1:1/").is_err());
        assert!(parse_http_url("http://no-dns-names.example/").is_err());
    }

    #[test]
    fn miss_then_hit_through_proxy() {
        let rig = rig(16);
        rig.origin
            .add_content("story", b"once upon a time".to_vec());
        let name = rig.rp.publish("story").unwrap();

        let (body, _, hit1) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        assert_eq!(body, b"once upon a time");
        assert!(!hit1, "first fetch is a miss");
        let (body2, _, hit2) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        assert_eq!(body2, body);
        assert!(hit2, "second fetch is a hit");
        let stats = rig.proxy.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.verify_failures, 0);
        assert_eq!(stats.in_flight, 0, "no request should still be live");
    }

    #[test]
    fn telemetry_snapshot_has_latency_histogram() {
        let rig = rig(4);
        rig.origin.add_content("timed", b"tick".to_vec());
        let name = rig.rp.publish("timed").unwrap();
        fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        let snap = rig.proxy.telemetry();
        assert_eq!(snap.counters["proxy.requests"], 2);
        assert_eq!(snap.counters["proxy.cache_hits"], 1);
        let lat = &snap.timers["proxy.request"];
        assert_eq!(lat.count, 2);
        assert!(lat.max > 0, "request spans must record time");
        // The snapshot round-trips through its JSON sidecar form.
        let back = icn_obs::Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn cache_hit_survives_reverse_proxy_outage() {
        let rig = rig(16);
        rig.origin.add_content("durable", b"cached bytes".to_vec());
        let name = rig.rp.publish("durable").unwrap();
        fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        // Kill the provider side entirely; the edge cache still serves.
        drop(rig._rp_srv);
        drop(rig._origin_srv);
        let (body, _, hit) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        assert!(hit);
        assert_eq!(body, b"cached bytes");
    }

    #[test]
    fn unknown_name_is_not_found() {
        let rig = rig(4);
        let name = ContentName::new(
            "ghost",
            crate::name::Principal(crate::crypto::sha256::digest(b"nobody")),
        )
        .unwrap();
        let err = fetch_verified(rig.proxy_srv.addr(), &name).unwrap_err();
        assert!(matches!(err, ProxyError::NotFound(_)));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let rig = rig(2);
        for (label, body) in [("a", "1"), ("b", "2"), ("c", "3")] {
            rig.origin.add_content(label, body.as_bytes().to_vec());
        }
        let na = rig.rp.publish("a").unwrap();
        let nb = rig.rp.publish("b").unwrap();
        let nc = rig.rp.publish("c").unwrap();
        fetch_verified(rig.proxy_srv.addr(), &na).unwrap();
        fetch_verified(rig.proxy_srv.addr(), &nb).unwrap();
        // Touch a so b is LRU, then insert c.
        fetch_verified(rig.proxy_srv.addr(), &na).unwrap();
        fetch_verified(rig.proxy_srv.addr(), &nc).unwrap();
        assert_eq!(rig.proxy.cached_objects(), 2);
        let (_, _, hit_a) = fetch_verified(rig.proxy_srv.addr(), &na).unwrap();
        assert!(hit_a, "a should have survived");
        let (_, _, hit_b) = fetch_verified(rig.proxy_srv.addr(), &nb).unwrap();
        assert!(!hit_b, "b should have been evicted");
    }

    #[test]
    fn range_requests_from_cache() {
        let rig = rig(4);
        rig.origin.add_content("big", (0u8..200).collect());
        let name = rig.rp.publish("big").unwrap();
        fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        let resp = http::http_get(
            rig.proxy_srv.addr(),
            &format!("http://{}/", name.to_fqdn()),
            &[("Range", "bytes=10-19")],
        )
        .unwrap();
        assert_eq!(resp.status, 206);
        assert_eq!(resp.body, (10u8..20).collect::<Vec<u8>>());
        assert_eq!(resp.headers.get("content-range"), Some("bytes 10-19/200"));
    }

    #[test]
    fn zero_capacity_proxy_never_caches() {
        let rig = rig(0);
        rig.origin.add_content("x", b"y".to_vec());
        let name = rig.rp.publish("x").unwrap();
        fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        let (_, _, hit) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
        assert!(!hit);
        assert_eq!(rig.proxy.cached_objects(), 0);
    }
}
