//! idICN — an incrementally deployable, application-layer ICN (§6 of
//! Fayazbakhsh et al., SIGCOMM 2013).
//!
//! idICN delivers the *qualitative* benefits of ICN (content-oriented
//! security, automatic configuration, ad hoc sharing, mobility) with purely
//! end-to-end mechanisms over HTTP — no router support required. This crate
//! implements the full Figure 11 pipeline over real loopback sockets:
//!
//! ```text
//!              (1) WPAD auto-config        (3) name resolution
//!   client ──────────► proxy ◄──────────────► resolver
//!     ▲ (7)             │ (4)                      ▲ (P2) register
//!     └── response      ▼                          │
//!                  reverse proxy ◄──── (P1) publish ── origin server
//!                       │ (5/6) fetch + sign + metadata
//!                       ▼
//!                  origin server
//! ```
//!
//! * [`access`] — hop-to-hop request-ID propagation, per-component JSONL
//!   access logs, and Prometheus `/metrics` exposition;
//! * [`crypto`] — SHA-256 (FIPS 180-4) and a Merkle one-time signature
//!   scheme, both implemented in-repo (no crypto crates on the approved
//!   dependency list); enough for self-certifying names;
//! * [`name`] — DONA-style flat self-certifying names `L.P` mapped into the
//!   DNS-compatible `L.P.idicn.org` namespace;
//! * [`chunk`] / [`metalink`] — Metalink/HTTP-style metadata: piece
//!   digests, mirrors, publisher key, and signature carried in HTTP headers;
//! * [`http`] — a minimal blocking HTTP/1.1 implementation (requests,
//!   responses, Content-Length bodies, Range, keep-alive) plus a tiny
//!   threaded server harness;
//! * [`resolver`] — the flat name-resolution service (SFR-like): REGISTER /
//!   RESOLVE with cryptographic authorization and `P`-level fallback;
//! * [`origin`] / [`reverse_proxy`] / [`proxy`] — the three HTTP roles of
//!   Figure 11;
//! * [`wpad`] — WPAD-style proxy auto-discovery and a declarative PAC
//!   subset with `FindProxyForURL` semantics;
//! * [`adhoc`] — mDNS-style ad hoc content sharing (the Alice & Bob
//!   scenario of §6.2);
//! * [`chaos`] — a deterministic fault-injecting forwarder (resets,
//!   stalls, truncation, content corruption) for soak-testing the overlay;
//! * [`mobility`] — dynamic re-registration plus HTTP-Range session
//!   resumption (§6.3).

#![warn(missing_docs)]

pub mod access;
pub mod adhoc;
pub mod chaos;
pub mod chunk;
pub mod crypto;
pub mod error;
pub mod http;
pub mod metalink;
pub mod mobility;
pub mod name;
pub mod origin;
pub mod proxy;
pub mod resolver;
pub mod retry;
pub mod reverse_proxy;
pub mod wpad;

pub use access::{AccessEntry, AccessLog, REQUEST_ID_HEADER};
pub use error::{ProxyError, ProxyResult};
pub use name::{ContentName, Principal};

/// Errors surfaced by idICN components.
#[derive(Debug)]
pub enum Error {
    /// Underlying socket/file error.
    Io(std::io::Error),
    /// A peer did not respond within the I/O deadline (see
    /// [`http::IO_TIMEOUT`]). Distinct from [`Error::Io`] so callers can
    /// retry deadline expiries without retrying, say, permission errors.
    Timeout(std::io::Error),
    /// A TCP connection to a peer could not be established (refused,
    /// reset, no route). Distinct from [`Error::NotFound`]: the *service*
    /// is gone, not the name — callers fall back instead of giving up.
    Unreachable(std::io::Error),
    /// Malformed protocol input (HTTP, names, registry lines, ...).
    Protocol(String),
    /// Content failed cryptographic verification.
    Verification(String),
    /// A name could not be resolved.
    NotFound(String),
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Timeout(e) => write!(f, "i/o deadline expired: {e}"),
            Error::Unreachable(e) => write!(f, "peer unreachable: {e}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Verification(m) => write!(f, "verification failed: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) | Error::Timeout(e) | Error::Unreachable(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;
