//! Bounded retries with deterministic backoff, and a per-key circuit
//! breaker — the failure-path policy shared by the overlay components.
//!
//! [`RetryPolicy`] retries *transient* transport failures only
//! ([`Error::Io`] / [`Error::Timeout`] / [`Error::Unreachable`]); protocol,
//! verification, and not-found errors are authoritative and returned
//! immediately. Backoff is exponential with **seeded, deterministic
//! jitter** — the jitter sequence is a pure function of the policy's seed
//! and the attempt index (the same SplitMix64 mixer the simulator's fault
//! schedule uses), never of the wall clock, so tests can assert exact
//! delay sequences. The sleep itself is injectable for the same reason.
//!
//! [`CircuitBreaker`] stops hammering an upstream that keeps failing:
//! after `threshold` consecutive failures a key's circuit opens and
//! callers skip it until a cooldown passes, after which one half-open
//! trial is allowed through — success closes the circuit, failure
//! re-opens it.

use crate::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// True for failures worth retrying: the transport hiccuped, the peer may
/// recover. Protocol/verification/not-found answers are final.
pub fn is_transient(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::Timeout(_) | Error::Unreachable(_))
}

/// SplitMix64 finalizer (same construction as `icn_core::fault::mix`).
/// Shared with [`crate::chaos`], whose injection schedule is drawn from
/// the same family of pure hashes.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bounded-attempt retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Cap on the un-jittered exponential delay.
    pub max_delay: Duration,
    /// Seed of the jitter sequence; equal seeds give equal delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms base doubling to at most 200 ms — sized for
    /// loopback services where failure detection is immediate.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter_seed: 0x1d1c_2013,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no delays).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The delay inserted after failed attempt `attempt` (0-based):
    /// `base · 2^attempt` capped at `max_delay`, stretched by a
    /// deterministic jitter factor in `[1.0, 1.5)` drawn from
    /// `(jitter_seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let draw = mix(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let frac = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0, 1)
        exp.mul_f64(1.0 + frac * 0.5)
    }

    /// Runs `op` (passed the 0-based attempt index) until it succeeds, a
    /// non-transient error occurs, or attempts are exhausted, sleeping
    /// with [`std::thread::sleep`] between attempts.
    pub fn run<T>(&self, op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run_with_sleep(std::thread::sleep, op)
    }

    /// [`RetryPolicy::run`] with an injectable sleep, so tests can collect
    /// the exact delay sequence instead of waiting it out.
    pub fn run_with_sleep<T>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < attempts && is_transient(&e) => {
                    sleep(self.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[derive(Default)]
struct BreakerEntry {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// When the cooldown has passed, exactly one caller is admitted as the
    /// half-open trial; this records when that probe was claimed so
    /// concurrent callers are rejected until the probe reports back (or,
    /// if it never does, until a full cooldown expires the claim).
    half_open_at: Option<Instant>,
}

/// A per-key circuit breaker (keys are upstream URLs in the edge proxy).
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    entries: Mutex<HashMap<String, BreakerEntry>>,
}

impl CircuitBreaker {
    /// Opens a key's circuit after `threshold` consecutive failures, for
    /// `cooldown` per (re-)opening.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            threshold: threshold.max(1),
            cooldown,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// True when a request to `key` may proceed: the circuit is closed, or
    /// it is open, the cooldown has passed, and *this* caller won the
    /// single half-open trial slot. While a trial is outstanding every
    /// other caller is rejected — a thundering herd of probes would defeat
    /// the breaker's whole purpose. A caller admitted here MUST report the
    /// outcome via [`CircuitBreaker::record_success`] /
    /// [`CircuitBreaker::record_failure`]; a probe that never reports
    /// (crashed caller) expires after one further cooldown, re-admitting a
    /// fresh trial.
    pub fn allows(&self, key: &str) -> bool {
        let mut entries = self.entries.lock();
        let Some(e) = entries.get_mut(key) else {
            return true;
        };
        let Some(until) = e.open_until else {
            return true;
        };
        let now = Instant::now();
        if now < until {
            return false; // still cooling down
        }
        match e.half_open_at {
            // A probe is in flight and has not gone stale: reject.
            Some(claimed) if now < claimed + self.cooldown => false,
            // No probe (or a stuck one): this caller becomes the trial.
            _ => {
                e.half_open_at = Some(now);
                true
            }
        }
    }

    /// Records a success: the key's failure streak (and any open circuit)
    /// is cleared.
    pub fn record_success(&self, key: &str) {
        self.entries.lock().remove(key);
    }

    /// Records a failure. Returns `true` when this failure opened (or
    /// re-opened) the circuit — callers count "breaker tripped" events off
    /// this edge.
    pub fn record_failure(&self, key: &str) -> bool {
        let mut entries = self.entries.lock();
        let e = entries.entry(key.to_string()).or_default();
        e.consecutive_failures += 1;
        if e.consecutive_failures >= self.threshold {
            let was_closed = e.open_until.is_none_or(|t| Instant::now() >= t);
            e.open_until = Some(Instant::now() + self.cooldown);
            // A failed half-open probe re-opens the circuit; the trial slot
            // frees up for the next post-cooldown caller.
            e.half_open_at = None;
            was_closed
        } else {
            false
        }
    }

    /// Number of keys with a currently-open circuit.
    pub fn open_circuits(&self) -> usize {
        let now = Instant::now();
        self.entries
            .lock()
            .values()
            .filter(|e| e.open_until.is_some_and(|t| now < t))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> Error {
        Error::Unreachable(std::io::Error::from(std::io::ErrorKind::ConnectionRefused))
    }

    #[test]
    fn transience_classification() {
        assert!(is_transient(&transient()));
        assert!(is_transient(&Error::Timeout(std::io::Error::from(
            std::io::ErrorKind::TimedOut
        ))));
        assert!(is_transient(&Error::Io(std::io::Error::other("x"))));
        assert!(!is_transient(&Error::NotFound("a.b".into())));
        assert!(!is_transient(&Error::Verification("bad sig".into())));
        assert!(!is_transient(&Error::Protocol("junk".into())));
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::default();
        let mut delays = Vec::new();
        let got = policy
            .run_with_sleep(
                |d| delays.push(d),
                |attempt| {
                    if attempt < 2 {
                        Err(transient())
                    } else {
                        Ok(attempt)
                    }
                },
            )
            .unwrap();
        assert_eq!(got, 2);
        assert_eq!(delays.len(), 2, "one sleep per retry");
        assert_eq!(delays[0], policy.backoff(0));
        assert_eq!(delays[1], policy.backoff(1));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let err = policy
            .run_with_sleep(
                |_| {},
                |_| -> Result<()> {
                    calls += 1;
                    Err(transient())
                },
            )
            .unwrap_err();
        assert_eq!(calls, 4, "exactly max_attempts calls");
        assert!(matches!(err, Error::Unreachable(_)), "last error returned");
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let mut calls = 0u32;
        let err = RetryPolicy::default()
            .run_with_sleep(
                |_| {},
                |_| -> Result<()> {
                    calls += 1;
                    Err(Error::NotFound("gone.P".into()))
                },
            )
            .unwrap_err();
        assert_eq!(calls, 1, "authoritative answers end the loop");
        assert!(matches!(err, Error::NotFound(_)));
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let a = RetryPolicy::default();
        let b = RetryPolicy::default();
        for attempt in 0..6 {
            assert_eq!(a.backoff(attempt), b.backoff(attempt), "pure in seed");
        }
        // Un-jittered base doubles; jitter stretches by < 1.5x, so each
        // delay stays below 1.5x the cap and at/above the base.
        assert!(a.backoff(0) >= a.base_delay);
        assert!(a.backoff(1) > a.backoff(0));
        assert!(a.backoff(10) <= a.max_delay.mul_f64(1.5));
        // A different seed produces a different jitter sequence somewhere.
        let c = RetryPolicy {
            jitter_seed: 999,
            ..RetryPolicy::default()
        };
        assert!((0..6).any(|i| c.backoff(i) != a.backoff(i)));
    }

    #[test]
    fn none_policy_is_single_shot() {
        let mut calls = 0u32;
        let _ = RetryPolicy::none().run_with_sleep(
            |_| panic!("no sleeps"),
            |_| -> Result<()> {
                calls += 1;
                Err(transient())
            },
        );
        assert_eq!(calls, 1);
    }

    #[test]
    fn breaker_opens_after_threshold_and_success_resets() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(b.allows("u"));
        assert!(!b.record_failure("u"));
        assert!(!b.record_failure("u"));
        assert!(b.allows("u"), "still closed below threshold");
        assert!(b.record_failure("u"), "third failure opens the circuit");
        assert!(!b.allows("u"), "open circuit rejects");
        assert_eq!(b.open_circuits(), 1);
        // Another key is independent.
        assert!(b.allows("v"));
        // Success (e.g. via a different path) closes it again.
        b.record_success("u");
        assert!(b.allows("u"));
        assert_eq!(b.open_circuits(), 0);
    }

    #[test]
    fn half_open_admits_exactly_one_concurrent_probe() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};

        let b = Arc::new(CircuitBreaker::new(1, Duration::from_millis(30)));
        assert!(b.record_failure("u"), "open the circuit");
        std::thread::sleep(Duration::from_millis(40)); // past the cooldown

        // Eight threads race for the half-open trial; exactly one may win.
        let admitted = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (b, admitted, barrier) = (b.clone(), admitted.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    if b.allows("u") {
                        admitted.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 1, "single trial slot");

        // The probe fails: circuit re-opens, nobody gets through.
        assert!(b.record_failure("u"), "failed probe re-opens");
        assert!(!b.allows("u"), "cooling down again");

        // Next round: the probe succeeds and the circuit closes for all.
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.allows("u"), "next trial admitted");
        b.record_success("u");
        assert!(b.allows("u") && b.allows("u"), "closed circuit admits all");
    }

    #[test]
    fn stuck_half_open_probe_expires_after_a_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20));
        assert!(b.record_failure("u"));
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allows("u"), "probe claimed");
        // The claimant never reports back (crashed mid-request). Until the
        // claim goes stale the slot stays taken...
        assert!(!b.allows("u"), "fresh claim blocks other callers");
        // ...and one cooldown later a new trial is admitted.
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.allows("u"), "stale claim expired");
    }

    #[test]
    fn backoff_schedule_is_reproducible_across_runs() {
        // Two full run_with_sleep schedules under the same seed observe the
        // identical delay sequence — retries never consult the wall clock.
        let policy = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        let schedule = |p: &RetryPolicy| {
            let mut delays = Vec::new();
            let _ = p.run_with_sleep(|d| delays.push(d), |_| -> Result<()> { Err(transient()) });
            delays
        };
        let a = schedule(&policy);
        let b = schedule(&policy);
        assert_eq!(a.len(), 5, "max_attempts - 1 sleeps");
        assert_eq!(a, b, "same seed, same schedule");
        // And a different jitter seed moves at least one delay.
        let other = schedule(&RetryPolicy {
            jitter_seed: 0xbeef,
            ..policy
        });
        assert_ne!(a, other, "jitter seed steers the schedule");
    }

    #[test]
    fn breaker_half_opens_after_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        assert!(b.record_failure("u"), "threshold 1 opens immediately");
        // Zero cooldown: the very next check is the half-open trial.
        assert!(b.allows("u"), "half-open trial allowed");
        // A failed trial re-opens (and reports the re-opening edge).
        assert!(b.record_failure("u"));
        // A successful trial closes.
        b.record_success("u");
        assert!(b.allows("u"));
    }
}
