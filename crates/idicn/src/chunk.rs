//! Content chunking and piece digests (Metalink-style).
//!
//! Metalink describes a download by its total digest plus per-piece digests
//! so clients can verify partial transfers — exactly what a resuming mobile
//! client (§6.3) needs: after resuming mid-object it can still verify every
//! piece it fetched.

use crate::crypto::sha256::digest;
use crate::crypto::Digest;

/// Piece-wise digests of one content object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedDigests {
    /// Digest over the full content.
    pub full: Digest,
    /// Piece size in bytes (the final piece may be shorter).
    pub piece_size: usize,
    /// One digest per piece, in order.
    pub pieces: Vec<Digest>,
}

impl ChunkedDigests {
    /// Computes digests for `content` with the given `piece_size`.
    ///
    /// # Panics
    /// Panics if `piece_size == 0`.
    pub fn compute(content: &[u8], piece_size: usize) -> Self {
        assert!(piece_size > 0, "piece size must be positive");
        let pieces = content.chunks(piece_size).map(digest).collect();
        Self {
            full: digest(content),
            piece_size,
            pieces,
        }
    }

    /// Number of pieces.
    pub fn num_pieces(&self) -> usize {
        self.pieces.len()
    }

    /// Verifies the whole content against the full digest.
    pub fn verify_full(&self, content: &[u8]) -> bool {
        digest(content) == self.full
    }

    /// Verifies one piece by index. The caller supplies the piece's bytes
    /// (e.g. from a ranged fetch); the final piece may be short.
    pub fn verify_piece(&self, index: usize, piece: &[u8]) -> bool {
        match self.pieces.get(index) {
            Some(d) => digest(piece) == *d,
            None => false,
        }
    }

    /// The byte range `[start, end)` of piece `index` within an object of
    /// `total_len` bytes; `None` when the index is out of range.
    pub fn piece_range(&self, index: usize, total_len: usize) -> Option<(usize, usize)> {
        if index >= self.pieces.len() {
            return None;
        }
        let start = index * self.piece_size;
        Some((start, (start + self.piece_size).min(total_len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_cover_all_pieces() {
        let content = vec![7u8; 1000];
        let d = ChunkedDigests::compute(&content, 256);
        assert_eq!(d.num_pieces(), 4); // 256+256+256+232
        assert!(d.verify_full(&content));
        for i in 0..4 {
            let (s, e) = d.piece_range(i, content.len()).unwrap();
            assert!(d.verify_piece(i, &content[s..e]), "piece {i}");
        }
        assert_eq!(d.piece_range(3, 1000), Some((768, 1000)));
        assert_eq!(d.piece_range(4, 1000), None);
    }

    #[test]
    fn corrupt_piece_detected() {
        let content: Vec<u8> = (0..512u32).map(|i| i as u8).collect();
        let d = ChunkedDigests::compute(&content, 128);
        let mut bad = content.clone();
        bad[200] ^= 0xff;
        assert!(!d.verify_full(&bad));
        assert!(
            d.verify_piece(0, &bad[0..128]),
            "untouched piece still good"
        );
        assert!(!d.verify_piece(1, &bad[128..256]), "corrupt piece detected");
    }

    #[test]
    fn exact_multiple_and_empty() {
        let content = vec![1u8; 512];
        let d = ChunkedDigests::compute(&content, 256);
        assert_eq!(d.num_pieces(), 2);
        let empty = ChunkedDigests::compute(&[], 256);
        assert_eq!(empty.num_pieces(), 0);
        assert!(empty.verify_full(&[]));
        assert!(!empty.verify_piece(0, &[]));
    }

    #[test]
    fn single_byte_pieces() {
        let content = b"abc";
        let d = ChunkedDigests::compute(content, 1);
        assert_eq!(d.num_pieces(), 3);
        assert!(d.verify_piece(1, b"b"));
        assert!(!d.verify_piece(1, b"x"));
    }
}
