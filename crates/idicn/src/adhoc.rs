//! Ad hoc content sharing without infrastructure (§6.2).
//!
//! The Alice & Bob scenario: peers on a link-local network with no DHCP,
//! no DNS, and no upstream connectivity share browser-cache content. Each
//! peer runs an [`AdhocNode`]:
//!
//! * it publishes the domains (and flat idICN names) for which it has
//!   cached content, answering name queries over UDP — the mDNS stand-in
//!   (real deployments use 224.0.0.251 multicast; here queries go to the
//!   peers on the same emulated link, which the [`Link`] handle tracks);
//! * it serves the cached bytes over HTTP like the paper's 350-line ad hoc
//!   proxy exposing Chrome's cache.
//!
//! The module also reproduces the paper's noted *limitation*: with plain
//! domain names, only one peer can own a name at a time (first answer
//! wins), whereas flat `L.P` names do not collide.

use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An emulated link-local segment: the set of peers reachable by "multicast".
#[derive(Clone, Default)]
pub struct Link {
    peers: Arc<RwLock<Vec<SocketAddr>>>,
}

impl Link {
    /// Creates an empty segment.
    pub fn new() -> Self {
        Self::default()
    }

    fn join(&self, addr: SocketAddr) {
        self.peers.write().push(addr);
    }

    fn peers(&self) -> Vec<SocketAddr> {
        self.peers.read().clone()
    }
}

struct NodeInner {
    /// Published name → local content (the browser-cache stand-in).
    cache: RwLock<HashMap<String, Vec<u8>>>,
    name: String,
}

/// One peer in the ad hoc network.
pub struct AdhocNode {
    inner: Arc<NodeInner>,
    link: Link,
    mdns_addr: SocketAddr,
    http_server: HttpServer,
    stop: Arc<AtomicBool>,
    mdns_thread: Option<std::thread::JoinHandle<()>>,
}

impl AdhocNode {
    /// Starts a peer named `name` (for diagnostics) on `link`.
    pub fn start(name: &str, link: &Link) -> Result<Self> {
        let inner = Arc::new(NodeInner {
            cache: RwLock::new(HashMap::new()),
            name: name.to_string(),
        });

        // HTTP side: serve cached content by name.
        let http_inner = inner.clone();
        let http_server = http::serve(Arc::new(move |req: &HttpRequest| {
            // Accept both proxy-form (http://cnn.com/) and Host-based
            // requests, like the paper's ad hoc proxy.
            let host = req
                .target
                .strip_prefix("http://")
                .and_then(|r| r.split('/').next())
                .map(str::to_string)
                .or_else(|| req.headers.get("host").map(str::to_string));
            match host.and_then(|h| http_inner.cache.read().get(&h).cloned()) {
                Some(body) => {
                    let mut resp = HttpResponse::ok(body);
                    resp.headers.set("X-Adhoc-Peer", http_inner.name.clone());
                    resp
                }
                None => HttpResponse::not_found("not in this peer's cache"),
            }
        }))?;
        let http_addr = http_server.addr();

        // mDNS side: answer "Q <name>" with "A <name> <http addr>".
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let mdns_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let mdns_inner = inner.clone();
        let mdns_thread = std::thread::spawn(move || {
            let mut buf = [0u8; 1024];
            while !flag.load(Ordering::SeqCst) {
                if let Ok((n, from)) = socket.recv_from(&mut buf) {
                    let Ok(text) = std::str::from_utf8(&buf[..n]) else {
                        continue;
                    };
                    if let Some(q) = text.strip_prefix("Q ") {
                        if mdns_inner.cache.read().contains_key(q) {
                            let answer = format!("A {q} http://{http_addr}");
                            let _ = socket.send_to(answer.as_bytes(), from);
                        }
                    }
                }
            }
        });

        link.join(mdns_addr);
        Ok(Self {
            inner,
            link: link.clone(),
            mdns_addr,
            http_server,
            stop,
            mdns_thread: Some(mdns_thread),
        })
    }

    /// The peer's human name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The peer's mDNS address on the emulated link.
    pub fn mdns_addr(&self) -> SocketAddr {
        self.mdns_addr
    }

    /// Publishes cached content under a name (a legacy domain like
    /// `cnn.com`, or a flat `L.P` name).
    pub fn publish(&self, name: &str, content: Vec<u8>) {
        self.inner.cache.write().insert(name.to_string(), content);
    }

    /// Resolves `name` by querying every peer on the link; first answer
    /// wins (the paper's single-publisher limitation for domain names).
    pub fn resolve(&self, name: &str) -> Option<SocketAddr> {
        let socket = UdpSocket::bind("127.0.0.1:0").ok()?;
        socket
            .set_read_timeout(Some(Duration::from_millis(300)))
            .ok()?;
        let query = format!("Q {name}");
        for peer in self.link.peers() {
            if peer == self.mdns_addr {
                continue; // don't ask ourselves
            }
            let _ = socket.send_to(query.as_bytes(), peer);
        }
        let mut buf = [0u8; 1024];
        let (n, _) = socket.recv_from(&mut buf).ok()?;
        let text = std::str::from_utf8(&buf[..n]).ok()?;
        let mut parts = text.split(' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("A"), Some(answered), Some(url)) if answered == name => {
                crate::proxy::parse_http_url(url).ok().map(|(addr, _)| addr)
            }
            _ => None,
        }
    }

    /// The full Bob-side flow: resolve `name` over mDNS, then fetch it over
    /// HTTP from whichever peer answered.
    pub fn fetch(&self, name: &str) -> Option<Vec<u8>> {
        let peer_http = self.resolve(name)?;
        let resp = http::http_get(peer_http, &format!("http://{name}/"), &[]).ok()?;
        resp.is_success().then_some(resp.body)
    }

    /// Stops the peer's threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.mdns_thread.take() {
            let _ = t.join();
        }
        // http_server shuts down on drop.
        let _ = &self.http_server;
    }
}

impl Drop for AdhocNode {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.mdns_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alice_shares_cnn_with_bob() {
        // The exact §6.2 walkthrough.
        let link = Link::new();
        let alice = AdhocNode::start("alice", &link).unwrap();
        let bob = AdhocNode::start("bob", &link).unwrap();
        alice.publish("cnn.com", b"<h1>CNN headlines</h1>".to_vec());

        let body = bob.fetch("cnn.com").expect("bob finds alice's copy");
        assert_eq!(body, b"<h1>CNN headlines</h1>");
        // Bob can't fetch something nobody cached.
        assert!(bob.fetch("nyt.com").is_none());
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn flat_names_avoid_domain_collision() {
        // Two peers both have content for the same domain: only one answer
        // wins for `cnn.com`, but flat names are collision-free.
        let link = Link::new();
        let alice = AdhocNode::start("alice", &link).unwrap();
        let carol = AdhocNode::start("carol", &link).unwrap();
        let bob = AdhocNode::start("bob", &link).unwrap();

        alice.publish("cnn.com", b"alice's copy".to_vec());
        carol.publish("cnn.com", b"carol's copy".to_vec());
        // Flat names are per-publisher and don't collide.
        alice.publish("story.aliceprincipal", b"alice story".to_vec());
        carol.publish("story.carolprincipal", b"carol story".to_vec());

        let domain_copy = bob.fetch("cnn.com").unwrap();
        assert!(domain_copy == b"alice's copy" || domain_copy == b"carol's copy");
        assert_eq!(bob.fetch("story.aliceprincipal").unwrap(), b"alice story");
        assert_eq!(bob.fetch("story.carolprincipal").unwrap(), b"carol story");
        alice.shutdown();
        carol.shutdown();
        bob.shutdown();
    }

    #[test]
    fn no_peers_no_answer() {
        let link = Link::new();
        let loner = AdhocNode::start("loner", &link).unwrap();
        assert!(loner.resolve("anything").is_none());
        loner.shutdown();
    }
}
