//! Metalink/HTTP-style content metadata carried in HTTP headers (§6.1).
//!
//! The reverse proxy attaches, to every response, the metadata a client (or
//! edge proxy) needs to verify content authenticity without trusting the
//! channel: the full and per-piece digests, the publisher's MSS root, the
//! signature binding `(name, content digest)` to the publisher, and a list
//! of mirrors. Metalink-unaware clients simply ignore the headers — the
//! backward-compatibility property the paper leans on.

use crate::chunk::ChunkedDigests;
use crate::crypto::mss::MssSignature;
use crate::crypto::sha256::digest;
use crate::crypto::{from_hex, to_hex, Digest};
use crate::http::Headers;
use crate::name::ContentName;
use crate::{Error, Result};

/// Header names (the `X-IdICN-` prefix marks the overlay's extension
/// headers; `Digest` mirrors RFC 3230 / RFC 6249 usage).
pub mod header {
    /// Full-content digest, `sha-256=<hex>`.
    pub const DIGEST: &str = "Digest";
    /// The flat `L.P` content name.
    pub const NAME: &str = "X-IdICN-Name";
    /// Piece size in bytes.
    pub const PIECE_SIZE: &str = "X-IdICN-Piece-Size";
    /// Comma-separated hex piece digests.
    pub const PIECES: &str = "X-IdICN-Pieces";
    /// Publisher's Merkle root (hex).
    pub const PUBLISHER_ROOT: &str = "X-IdICN-Publisher-Root";
    /// Hex-encoded MSS signature over the name/content binding.
    pub const SIGNATURE: &str = "X-IdICN-Signature";
    /// Mirror URL (repeatable).
    pub const MIRROR: &str = "Link";
}

/// Everything needed to verify and re-locate one content object.
#[derive(Debug, Clone)]
pub struct Metadata {
    /// The content's flat name.
    pub name: ContentName,
    /// Full and piece digests.
    pub digests: ChunkedDigests,
    /// The publisher's Merkle root (pre-image of the principal).
    pub publisher_root: Digest,
    /// MSS signature over [`ContentName::binding_bytes`].
    pub signature: MssSignature,
    /// Mirror locations (absolute URLs).
    pub mirrors: Vec<String>,
}

impl Metadata {
    /// Verifies the complete chain for `content`:
    ///
    /// 1. the principal in the name matches the publisher root
    ///    (self-certification: `P == H(root)`);
    /// 2. the signature over the name/content binding verifies against the
    ///    root;
    /// 3. the content matches the signed full digest;
    /// 4. the piece digests are consistent with the content.
    pub fn verify(&self, content: &[u8]) -> Result<()> {
        if digest(&self.publisher_root) != self.name.principal.0 {
            return Err(Error::Verification(
                "publisher root does not match the name's principal".into(),
            ));
        }
        let binding = self.name.binding_bytes(&self.digests.full);
        if !self
            .signature
            .verify(&digest(&binding), &self.publisher_root)
        {
            return Err(Error::Verification("signature does not verify".into()));
        }
        if !self.digests.verify_full(content) {
            return Err(Error::Verification("content digest mismatch".into()));
        }
        let recomputed = ChunkedDigests::compute(content, self.digests.piece_size);
        if recomputed.pieces != self.digests.pieces {
            return Err(Error::Verification("piece digests inconsistent".into()));
        }
        Ok(())
    }

    /// Writes the metadata into HTTP response headers.
    pub fn to_headers(&self, headers: &mut Headers) {
        headers.set(header::NAME, self.name.to_flat());
        headers.set(
            header::DIGEST,
            format!("sha-256={}", to_hex(&self.digests.full)),
        );
        headers.set(header::PIECE_SIZE, self.digests.piece_size.to_string());
        headers.set(
            header::PIECES,
            self.digests
                .pieces
                .iter()
                .map(|d| to_hex(d))
                .collect::<Vec<_>>()
                .join(","),
        );
        headers.set(header::PUBLISHER_ROOT, to_hex(&self.publisher_root));
        headers.set(header::SIGNATURE, to_hex(&self.signature.to_bytes()));
        for m in &self.mirrors {
            headers.add(header::MIRROR, format!("<{m}>; rel=duplicate"));
        }
    }

    /// Parses metadata back out of HTTP headers.
    pub fn from_headers(headers: &Headers) -> Result<Self> {
        let get = |name: &str| {
            headers
                .get(name)
                .ok_or_else(|| Error::Protocol(format!("missing header {name}")))
        };
        let name = ContentName::parse(get(header::NAME)?)
            .ok_or_else(|| Error::Protocol("bad content name".into()))?;
        let digest_v = get(header::DIGEST)?;
        let full_hex = digest_v
            .strip_prefix("sha-256=")
            .ok_or_else(|| Error::Protocol("unsupported digest algorithm".into()))?;
        let full: Digest = from_hex(full_hex)
            .and_then(|v| v.try_into().ok())
            .ok_or_else(|| Error::Protocol("bad digest hex".into()))?;
        let piece_size: usize = get(header::PIECE_SIZE)?
            .parse()
            .map_err(|_| Error::Protocol("bad piece size".into()))?;
        if piece_size == 0 {
            return Err(Error::Protocol("zero piece size".into()));
        }
        let pieces_v = get(header::PIECES)?;
        let mut pieces = Vec::new();
        if !pieces_v.is_empty() {
            for p in pieces_v.split(',') {
                let d: Digest = from_hex(p)
                    .and_then(|v| v.try_into().ok())
                    .ok_or_else(|| Error::Protocol("bad piece hex".into()))?;
                pieces.push(d);
            }
        }
        let publisher_root: Digest = from_hex(get(header::PUBLISHER_ROOT)?)
            .and_then(|v| v.try_into().ok())
            .ok_or_else(|| Error::Protocol("bad publisher root".into()))?;
        let signature = from_hex(get(header::SIGNATURE)?)
            .and_then(|b| MssSignature::from_bytes(&b))
            .ok_or_else(|| Error::Protocol("bad signature encoding".into()))?;
        let mirrors = headers
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(header::MIRROR))
            .filter_map(|(_, v)| {
                let v = v.trim();
                let end = v.find('>')?;
                v.strip_prefix('<').map(|s| s[..end - 1].to_string())
            })
            .collect();
        Ok(Self {
            name,
            digests: ChunkedDigests {
                full,
                piece_size,
                pieces,
            },
            publisher_root,
            signature,
            mirrors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::mss::Identity;
    use crate::name::Principal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signed_metadata(content: &[u8]) -> (Metadata, Identity) {
        let mut id = Identity::generate(&mut StdRng::seed_from_u64(3), 2);
        let principal = Principal(id.principal_digest());
        let name = ContentName::new("testobj", principal).unwrap();
        let digests = ChunkedDigests::compute(content, 64);
        let binding = name.binding_bytes(&digests.full);
        let signature = id.sign(&digest(&binding));
        (
            Metadata {
                name,
                digests,
                publisher_root: id.root(),
                signature,
                mirrors: vec!["http://127.0.0.1:9999/mirror".into()],
            },
            id,
        )
    }

    #[test]
    fn verify_accepts_authentic_content() {
        let content = b"the quick brown fox".repeat(10);
        let (meta, _) = signed_metadata(&content);
        meta.verify(&content).unwrap();
    }

    #[test]
    fn verify_rejects_tampered_content() {
        let content = b"data".repeat(50);
        let (meta, _) = signed_metadata(&content);
        let mut bad = content.clone();
        bad[10] ^= 1;
        assert!(matches!(meta.verify(&bad), Err(Error::Verification(_))));
    }

    #[test]
    fn verify_rejects_wrong_principal() {
        let content = b"data".to_vec();
        let (mut meta, _) = signed_metadata(&content);
        // Re-point the name at a different principal.
        meta.name.principal = Principal(digest(b"someone else"));
        assert!(matches!(meta.verify(&content), Err(Error::Verification(_))));
    }

    #[test]
    fn verify_rejects_resigned_name() {
        // An attacker serving the right bytes under a different label must
        // fail (binding covers the label).
        let content = b"payload".to_vec();
        let (mut meta, _) = signed_metadata(&content);
        meta.name.label = "othername".into();
        assert!(matches!(meta.verify(&content), Err(Error::Verification(_))));
    }

    #[test]
    fn header_roundtrip() {
        let content = b"roundtrip content".repeat(8);
        let (meta, _) = signed_metadata(&content);
        let mut headers = Headers::new();
        meta.to_headers(&mut headers);
        let parsed = Metadata::from_headers(&headers).unwrap();
        parsed.verify(&content).unwrap();
        assert_eq!(parsed.name, meta.name);
        assert_eq!(parsed.mirrors, meta.mirrors);
        assert_eq!(parsed.digests, meta.digests);
    }

    #[test]
    fn missing_headers_rejected() {
        let content = b"x".to_vec();
        let (meta, _) = signed_metadata(&content);
        let mut headers = Headers::new();
        meta.to_headers(&mut headers);
        let mut stripped = Headers::new();
        for (n, v) in headers.iter() {
            if !n.eq_ignore_ascii_case(header::SIGNATURE) {
                stripped.add(n, v.to_string());
            }
        }
        assert!(Metadata::from_headers(&stripped).is_err());
    }

    #[test]
    fn empty_content_roundtrip() {
        let (meta, _) = signed_metadata(b"");
        let mut headers = Headers::new();
        meta.to_headers(&mut headers);
        let parsed = Metadata::from_headers(&headers).unwrap();
        parsed.verify(b"").unwrap();
    }
}
