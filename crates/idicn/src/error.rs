//! Typed errors for the proxy pipeline.
//!
//! [`ProxyError`] is a hand-rolled `thiserror`-style enum (the build is
//! offline, so no derive crate): one variant per failure class, a `Display`
//! message per variant, and `source()` chaining for wrapped lower-layer
//! errors. The edge and reverse proxies return it from their entry points;
//! [`From`] impls bridge to the coarser crate-level [`Error`] so callers
//! composing whole pipelines keep using `?`.

use crate::Error;
use std::fmt;

/// Errors surfaced by the edge proxy and reverse proxy entry points.
#[derive(Debug)]
pub enum ProxyError {
    /// A URL was not in the supported `http://host:port/path` form.
    BadUrl {
        /// The offending URL.
        url: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The proxy has not been started with `serve()` yet.
    NotServing,
    /// A label cannot form a valid content name.
    InvalidLabel(String),
    /// The name could not be resolved, or no location produced the object.
    NotFound(String),
    /// An upstream answered with a non-success HTTP status.
    UpstreamStatus {
        /// The upstream URL queried.
        url: String,
        /// The status it returned.
        status: u16,
    },
    /// An I/O deadline expired talking to an upstream; the transport cause
    /// is preserved for `source()`.
    Timeout(Error),
    /// An upstream peer could not be reached at the transport level
    /// (connection refused/reset); the cause is preserved for `source()`.
    /// Distinct from [`ProxyError::NotFound`]: the service is down, not
    /// the name — degradation ladders key off this variant.
    Unreachable(Error),
    /// Content failed signature verification (or the metadata named a
    /// different object). Never cached, never served.
    Verification(String),
    /// The origin's current bytes no longer match the published signature.
    Diverged {
        /// The published label whose content drifted.
        label: String,
    },
    /// A lower layer (HTTP transport, resolver protocol, metadata parsing)
    /// failed; the cause is preserved for `source()`.
    Layer(Error),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::BadUrl { url, reason } => write!(f, "bad URL {url:?}: {reason}"),
            ProxyError::NotServing => write!(f, "proxy not serving yet"),
            ProxyError::InvalidLabel(l) => write!(f, "invalid label {l:?}"),
            ProxyError::NotFound(n) => write!(f, "not found: {n}"),
            ProxyError::UpstreamStatus { url, status } => {
                write!(f, "upstream {url} returned {status}")
            }
            ProxyError::Timeout(e) => write!(f, "upstream deadline expired: {e}"),
            ProxyError::Unreachable(e) => write!(f, "upstream unreachable: {e}"),
            ProxyError::Verification(m) => write!(f, "verification failed: {m}"),
            ProxyError::Diverged { label } => {
                write!(
                    f,
                    "origin content for {label:?} diverged from published signature"
                )
            }
            ProxyError::Layer(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Layer(e) | ProxyError::Timeout(e) | ProxyError::Unreachable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProxyError {
    fn from(e: std::io::Error) -> Self {
        ProxyError::Layer(Error::Io(e))
    }
}

/// Lifts a crate-level error, keeping the classification where one exists.
impl From<Error> for ProxyError {
    fn from(e: Error) -> Self {
        match e {
            Error::NotFound(n) => ProxyError::NotFound(n),
            Error::Verification(m) => ProxyError::Verification(m),
            e @ Error::Timeout(_) => ProxyError::Timeout(e),
            e @ Error::Unreachable(_) => ProxyError::Unreachable(e),
            other => ProxyError::Layer(other),
        }
    }
}

/// Flattens back to the crate-level error for callers composing whole
/// pipelines (`wpad`, `mobility`, examples).
impl From<ProxyError> for Error {
    fn from(e: ProxyError) -> Self {
        match e {
            ProxyError::NotFound(n) => Error::NotFound(n),
            ProxyError::Verification(m) => Error::Verification(m),
            ProxyError::Diverged { .. } => Error::Verification(e.to_string()),
            ProxyError::Layer(inner)
            | ProxyError::Timeout(inner)
            | ProxyError::Unreachable(inner) => inner,
            other => Error::Protocol(other.to_string()),
        }
    }
}

/// Result alias for proxy entry points.
pub type ProxyResult<T> = std::result::Result<T, ProxyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProxyError::UpstreamStatus {
            url: "http://127.0.0.1:9/x".into(),
            status: 503,
        };
        assert_eq!(e.to_string(), "upstream http://127.0.0.1:9/x returned 503");
        assert!(std::error::Error::source(&e).is_none());

        let io = std::io::Error::other("boom");
        let e: ProxyError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn round_trips_keep_classification() {
        let e: Error = ProxyError::NotFound("L.P".into()).into();
        assert!(matches!(e, Error::NotFound(_)));
        let p: ProxyError = Error::Verification("bad sig".into()).into();
        assert!(matches!(p, ProxyError::Verification(_)));
        let p: ProxyError = Error::Protocol("junk".into()).into();
        assert!(matches!(p, ProxyError::Layer(Error::Protocol(_))));
        let e: Error = ProxyError::Diverged { label: "x".into() }.into();
        assert!(matches!(e, Error::Verification(_)));
    }

    #[test]
    fn transport_failures_keep_their_class_and_source() {
        let timeout = Error::Timeout(std::io::Error::from(std::io::ErrorKind::TimedOut));
        let p: ProxyError = timeout.into();
        assert!(matches!(p, ProxyError::Timeout(_)));
        assert!(std::error::Error::source(&p).is_some(), "cause chained");
        let e: Error = p.into();
        assert!(matches!(e, Error::Timeout(_)), "round-trips losslessly");

        let refused =
            Error::Unreachable(std::io::Error::from(std::io::ErrorKind::ConnectionRefused));
        let p: ProxyError = refused.into();
        assert!(matches!(p, ProxyError::Unreachable(_)));
        assert!(std::error::Error::source(&p).is_some());
        let e: Error = p.into();
        assert!(matches!(e, Error::Unreachable(_)));
    }
}
