//! A Merkle signature scheme: a reusable identity from one-time keys.
//!
//! A publisher generates `2^h` Lamport one-time keypairs and publishes only
//! the root of a Merkle tree over their public-key digests. Each signature
//! consists of (the OTS signature, the OTS public key, the leaf index, and
//! the Merkle authentication path); verifiers hash the OTS public key back
//! up the path and compare against the root. The ICN principal
//! [`crate::name::Principal`] is the SHA-256 of the root, so a single
//! self-certifying `P` can sign up to `2^h` objects.
//!
//! This is the textbook MSS construction (the ancestor of XMSS/RFC 8391),
//! chosen because it is implementable and auditable with nothing but a
//! hash function.

use crate::crypto::lamport::{self, KeyPair};
use crate::crypto::sha256::{digest, digest_pair};
use crate::crypto::Digest;
use rand::RngCore;

/// A signing identity holding `2^h` one-time keys.
pub struct Identity {
    keypairs: Vec<KeyPair>,
    /// Merkle tree nodes, level by level: `levels[0]` = leaf digests,
    /// `levels[h]` = [root].
    levels: Vec<Vec<Digest>>,
    next: usize,
}

/// A verifiable MSS signature.
#[derive(Debug, Clone)]
pub struct MssSignature {
    /// The one-time signature over the message digest.
    pub ots_sig: lamport::Signature,
    /// The one-time public key used.
    pub ots_pub: lamport::PublicKey,
    /// Which leaf of the Merkle tree the key occupies.
    pub leaf_index: u32,
    /// Sibling digests from the leaf to the root.
    pub auth_path: Vec<Digest>,
}

impl Identity {
    /// Generates an identity with `2^height` one-time keys.
    ///
    /// # Panics
    /// Panics if `height > 16` (that would be 65536 Lamport keys — far more
    /// than any demo needs and slow to generate).
    pub fn generate<R: RngCore>(rng: &mut R, height: u32) -> Self {
        assert!(height <= 16, "identity too large");
        let n = 1usize << height;
        let keypairs: Vec<KeyPair> = (0..n).map(|_| KeyPair::generate(rng)).collect();
        let mut levels = Vec::with_capacity(height as usize + 1);
        levels.push(
            keypairs
                .iter()
                .map(|kp| kp.public.digest())
                .collect::<Vec<_>>(),
        );
        loop {
            let next: Vec<Digest> = match levels.last() {
                Some(prev) if prev.len() > 1 => prev
                    .chunks(2)
                    .map(|pair| digest_pair(&pair[0], &pair[1]))
                    .collect(),
                _ => break,
            };
            levels.push(next);
        }
        Self {
            keypairs,
            levels,
            next: 0,
        }
    }

    /// The Merkle root committing to all one-time keys.
    pub fn root(&self) -> Digest {
        self.levels.last().map_or([0u8; 32], |top| top[0])
    }

    /// The principal `P = H(root)` this identity certifies.
    pub fn principal_digest(&self) -> Digest {
        digest(&self.root())
    }

    /// Signatures remaining before the identity is exhausted.
    pub fn remaining(&self) -> usize {
        self.keypairs.len() - self.next
    }

    /// Signs a message digest with the next unused one-time key.
    ///
    /// # Panics
    /// Panics when all one-time keys have been used.
    pub fn sign(&mut self, msg_digest: &Digest) -> MssSignature {
        assert!(self.next < self.keypairs.len(), "identity exhausted");
        let leaf = self.next;
        self.next += 1;
        let kp = &self.keypairs[leaf];
        let mut auth_path = Vec::with_capacity(self.levels.len() - 1);
        let mut idx = leaf;
        for level in &self.levels[..self.levels.len() - 1] {
            auth_path.push(level[idx ^ 1]);
            idx >>= 1;
        }
        MssSignature {
            ots_sig: kp.secret.sign(msg_digest),
            ots_pub: kp.public.clone(),
            leaf_index: leaf as u32,
            auth_path,
        }
    }
}

impl MssSignature {
    /// Verifies the signature over `msg_digest` against a Merkle `root`.
    pub fn verify(&self, msg_digest: &Digest, root: &Digest) -> bool {
        if !self.ots_pub.verify(msg_digest, &self.ots_sig) {
            return false;
        }
        let mut node = self.ots_pub.digest();
        let mut idx = self.leaf_index;
        for sib in &self.auth_path {
            node = if idx & 1 == 0 {
                digest_pair(&node, sib)
            } else {
                digest_pair(sib, &node)
            };
            idx >>= 1;
        }
        idx == 0 && node == *root
    }

    /// Serializes to bytes (length-prefixed fields).
    pub fn to_bytes(&self) -> Vec<u8> {
        let sig = self.ots_sig.to_bytes();
        let pk = self.ots_pub.to_bytes();
        let mut out = Vec::with_capacity(8 + sig.len() + pk.len() + self.auth_path.len() * 32);
        out.extend_from_slice(&self.leaf_index.to_be_bytes());
        out.extend_from_slice(&(self.auth_path.len() as u32).to_be_bytes());
        out.extend_from_slice(&sig);
        out.extend_from_slice(&pk);
        for d in &self.auth_path {
            out.extend_from_slice(d);
        }
        out
    }

    /// Parses the serialization from [`MssSignature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        const SIG_LEN: usize = lamport::BITS * 32;
        const PK_LEN: usize = lamport::BITS * 64;
        if bytes.len() < 8 {
            return None;
        }
        let leaf_index = u32::from_be_bytes(bytes[0..4].try_into().ok()?);
        let path_len = u32::from_be_bytes(bytes[4..8].try_into().ok()?) as usize;
        if path_len > 32 {
            return None;
        }
        let expected = 8 + SIG_LEN + PK_LEN + path_len * 32;
        if bytes.len() != expected {
            return None;
        }
        let ots_sig = lamport::Signature::from_bytes(&bytes[8..8 + SIG_LEN])?;
        let ots_pub = lamport::PublicKey::from_bytes(&bytes[8 + SIG_LEN..8 + SIG_LEN + PK_LEN])?;
        let mut auth_path = Vec::with_capacity(path_len);
        let base = 8 + SIG_LEN + PK_LEN;
        for i in 0..path_len {
            let mut d = [0u8; 32];
            d.copy_from_slice(&bytes[base + i * 32..base + (i + 1) * 32]);
            auth_path.push(d);
        }
        Some(Self {
            ots_sig,
            ots_pub,
            leaf_index,
            auth_path,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity(h: u32) -> Identity {
        Identity::generate(&mut StdRng::seed_from_u64(7), h)
    }

    #[test]
    fn sign_verify_multiple_messages() {
        let mut id = identity(2); // 4 keys
        let root = id.root();
        for i in 0..4 {
            let msg = digest(format!("object {i}").as_bytes());
            let sig = id.sign(&msg);
            assert!(sig.verify(&msg, &root), "message {i}");
        }
        assert_eq!(id.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut id = identity(0); // 1 key
        id.sign(&digest(b"a"));
        id.sign(&digest(b"b"));
    }

    #[test]
    fn wrong_root_rejected() {
        let mut id = identity(1);
        let other = Identity::generate(&mut StdRng::seed_from_u64(1234), 1);
        let msg = digest(b"m");
        let sig = id.sign(&msg);
        assert!(sig.verify(&msg, &id.root()));
        assert!(!sig.verify(&msg, &other.root()));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut id = identity(2);
        let msg = digest(b"m");
        let mut sig = id.sign(&msg);
        sig.auth_path[0][0] ^= 1;
        assert!(!sig.verify(&msg, &id.root()));
    }

    #[test]
    fn forged_leaf_index_rejected() {
        let mut id = identity(2);
        let msg = digest(b"m");
        let mut sig = id.sign(&msg);
        sig.leaf_index = 2;
        assert!(!sig.verify(&msg, &id.root()));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut id = identity(2);
        let msg = digest(b"roundtrip");
        let sig = id.sign(&msg);
        let back = MssSignature::from_bytes(&sig.to_bytes()).unwrap();
        assert!(back.verify(&msg, &id.root()));
        assert!(MssSignature::from_bytes(b"short").is_none());
        // Truncated body.
        let mut bytes = sig.to_bytes();
        bytes.pop();
        assert!(MssSignature::from_bytes(&bytes).is_none());
    }

    #[test]
    fn principal_is_stable() {
        let id1 = identity(1);
        let id2 = identity(1);
        assert_eq!(id1.principal_digest(), id2.principal_digest(), "same seed");
        let other = Identity::generate(&mut StdRng::seed_from_u64(8), 1);
        assert_ne!(id1.principal_digest(), other.principal_digest());
    }
}
