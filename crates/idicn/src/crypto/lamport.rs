//! Lamport one-time signatures over SHA-256.
//!
//! A Lamport key signs exactly one 256-bit message digest: the secret key is
//! 2×256 random 32-byte preimages, the public key their hashes; the
//! signature reveals one preimage per message bit. Security reduces to the
//! preimage resistance of SHA-256. **Each key must sign at most once** —
//! the Merkle scheme in [`crate::crypto::mss`] turns a batch of these into
//! a reusable identity.

use crate::crypto::sha256::digest;
use crate::crypto::Digest;
use rand::RngCore;

/// Number of message bits signed (SHA-256 digests).
pub const BITS: usize = 256;

/// Secret key: `preimages[bit][value]`.
#[derive(Debug, Clone)]
pub struct SecretKey {
    preimages: Box<[[Digest; 2]; BITS]>,
}

/// Public key: hashes of all preimages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    hashes: Box<[[Digest; 2]; BITS]>,
}

/// A signature: one revealed preimage per bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    revealed: Box<[Digest; BITS]>,
}

/// A freshly generated one-time keypair.
pub struct KeyPair {
    /// The signing key (use once!).
    pub secret: SecretKey,
    /// The corresponding verification key.
    pub public: PublicKey,
}

impl KeyPair {
    /// Generates a keypair from the given RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut preimages = Box::new([[[0u8; 32]; 2]; BITS]);
        let mut hashes = Box::new([[[0u8; 32]; 2]; BITS]);
        for bit in 0..BITS {
            for v in 0..2 {
                rng.fill_bytes(&mut preimages[bit][v]);
                hashes[bit][v] = digest(&preimages[bit][v]);
            }
        }
        KeyPair {
            secret: SecretKey { preimages },
            public: PublicKey { hashes },
        }
    }
}

impl SecretKey {
    /// Signs a 256-bit message digest (sign the *digest* of your message).
    pub fn sign(&self, msg_digest: &Digest) -> Signature {
        let mut revealed = Box::new([[0u8; 32]; BITS]);
        for bit in 0..BITS {
            let v = bit_of(msg_digest, bit);
            revealed[bit] = self.preimages[bit][v];
        }
        Signature { revealed }
    }
}

impl PublicKey {
    /// Verifies `sig` over a message digest.
    pub fn verify(&self, msg_digest: &Digest, sig: &Signature) -> bool {
        for bit in 0..BITS {
            let v = bit_of(msg_digest, bit);
            if digest(&sig.revealed[bit]) != self.hashes[bit][v] {
                return false;
            }
        }
        true
    }

    /// A compact commitment to this public key: SHA-256 over all hashes.
    pub fn digest(&self) -> Digest {
        let mut h = crate::crypto::sha256::Sha256::new();
        for bit in 0..BITS {
            h.update(&self.hashes[bit][0]);
            h.update(&self.hashes[bit][1]);
        }
        h.finalize()
    }

    /// Serializes to `BITS * 2 * 32` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 64);
        for bit in 0..BITS {
            out.extend_from_slice(&self.hashes[bit][0]);
            out.extend_from_slice(&self.hashes[bit][1]);
        }
        out
    }

    /// Parses the serialization from [`PublicKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != BITS * 64 {
            return None;
        }
        let mut hashes = Box::new([[[0u8; 32]; 2]; BITS]);
        for bit in 0..BITS {
            hashes[bit][0].copy_from_slice(&bytes[bit * 64..bit * 64 + 32]);
            hashes[bit][1].copy_from_slice(&bytes[bit * 64 + 32..bit * 64 + 64]);
        }
        Some(Self { hashes })
    }
}

impl Signature {
    /// Serializes to `BITS * 32` bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(BITS * 32);
        for bit in 0..BITS {
            out.extend_from_slice(&self.revealed[bit]);
        }
        out
    }

    /// Parses the serialization from [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != BITS * 32 {
            return None;
        }
        let mut revealed = Box::new([[0u8; 32]; BITS]);
        for bit in 0..BITS {
            revealed[bit].copy_from_slice(&bytes[bit * 32..bit * 32 + 32]);
        }
        Some(Self { revealed })
    }
}

#[inline]
fn bit_of(digest: &Digest, bit: usize) -> usize {
    ((digest[bit / 8] >> (bit % 8)) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair();
        let msg = digest(b"hello icn");
        let sig = kp.secret.sign(&msg);
        assert!(kp.public.verify(&msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = keypair();
        let sig = kp.secret.sign(&digest(b"message A"));
        assert!(!kp.public.verify(&digest(b"message B"), &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair();
        let msg = digest(b"m");
        let mut sig = kp.secret.sign(&msg);
        sig.revealed[0][0] ^= 1;
        assert!(!kp.public.verify(&msg, &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair();
        let kp2 = KeyPair::generate(&mut StdRng::seed_from_u64(2));
        let msg = digest(b"m");
        let sig = kp1.secret.sign(&msg);
        assert!(!kp2.public.verify(&msg, &sig));
    }

    #[test]
    fn serialization_roundtrip() {
        let kp = keypair();
        let msg = digest(b"serialize me");
        let sig = kp.secret.sign(&msg);
        let pk2 = PublicKey::from_bytes(&kp.public.to_bytes()).unwrap();
        let sig2 = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert!(pk2.verify(&msg, &sig2));
        assert_eq!(pk2.digest(), kp.public.digest());
        assert!(PublicKey::from_bytes(&[0u8; 3]).is_none());
        assert!(Signature::from_bytes(&[0u8; 3]).is_none());
    }
}
