//! Hash-based cryptography for self-certifying names.
//!
//! The approved dependency list has no cryptography crate, so idICN ships
//! its own primitives — all hash-based, which keeps them short and
//! reviewable:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, tested against the official vectors;
//! * [`lamport`] — Lamport one-time signatures over SHA-256;
//! * [`mss`] — a Merkle signature scheme: a publisher identity is the
//!   Merkle root over `2^h` Lamport one-time public keys, so one identity
//!   (`P = H(root)`) can sign many objects. This is the classic XMSS
//!   ancestor, adequate for demonstrating the ICN security model.

pub mod lamport;
pub mod mss;
pub mod sha256;

pub use sha256::{digest, Sha256};

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

/// Hex-encodes bytes (lowercase).
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Decodes lowercase/uppercase hex; `None` on bad input.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    fn nibble(c: u8) -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    }
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        let h = to_hex(&data);
        assert_eq!(h, "00017f80ff");
        assert_eq!(from_hex(&h).unwrap(), data);
        assert_eq!(from_hex("00017F80FF").unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none());
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
