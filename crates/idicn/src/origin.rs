//! The origin content server (Figure 11, right edge).
//!
//! A plain HTTP server owning the authoritative copies. It knows nothing
//! about idICN names or signatures — that is the reverse proxy's job —
//! which mirrors the paper's deployment story: content providers adopt
//! idICN by fronting an unmodified origin with a Metalink-generating
//! reverse proxy.

use crate::access::{AccessEntry, AccessLog, REQUEST_ID_HEADER};
use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// An in-memory origin store served over HTTP at `/content/<label>`.
#[derive(Clone, Default)]
pub struct OriginServer {
    store: Arc<RwLock<HashMap<String, Vec<u8>>>>,
    access: Arc<AccessLog>,
}

impl OriginServer {
    /// Creates an empty origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// The structured JSONL access log (one entry per HTTP request).
    pub fn access_log(&self) -> &AccessLog {
        &self.access
    }

    /// Adds (or replaces) a content object.
    pub fn add_content(&self, label: &str, content: Vec<u8>) {
        self.store.write().insert(label.to_string(), content);
    }

    /// Reads a content object.
    pub fn get_content(&self, label: &str) -> Option<Vec<u8>> {
        self.store.read().get(label).cloned()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    /// True when the origin stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves the store over HTTP on a fresh loopback port.
    pub fn serve(&self) -> Result<HttpServer> {
        let me = self.clone();
        http::serve(Arc::new(move |req: &HttpRequest| me.handle(req)))
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let started = Instant::now();
        // The origin is an unmodified HTTP server in the paper's story, but
        // it still echoes the correlation ID (standard tracing practice) so
        // the full proxy → resolver → reverse proxy → origin chain joins up.
        let request_id = req
            .headers
            .get(REQUEST_ID_HEADER)
            .unwrap_or("-")
            .to_string();
        let (mut resp, outcome) = self.handle_inner(req);
        if request_id != "-" {
            resp.headers.set(REQUEST_ID_HEADER, &request_id);
        }
        self.access.log(&AccessEntry {
            request_id,
            component: "origin",
            target: req.target.clone(),
            upstream: None,
            attempts: 0,
            breaker_skips: 0,
            latency_ns: started.elapsed().as_nanos() as u64,
            status: resp.status,
            outcome,
        });
        resp
    }

    fn handle_inner(&self, req: &HttpRequest) -> (HttpResponse, &'static str) {
        if req.method != "GET" {
            return (HttpResponse::new(400, b"only GET".to_vec()), "bad_request");
        }
        match req.target.strip_prefix("/content/") {
            Some(label) => match self.get_content(label) {
                Some(body) => (HttpResponse::ok(body), "ok"),
                None => (HttpResponse::not_found(label), "not_found"),
            },
            None => (HttpResponse::not_found("unknown path"), "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_stored_content() {
        let origin = OriginServer::new();
        origin.add_content("hello", b"world".to_vec());
        assert_eq!(origin.len(), 1);
        let server = origin.serve().unwrap();
        let resp = http::http_get(server.addr(), "/content/hello", &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"world");
        let resp = http::http_get(server.addr(), "/content/missing", &[]).unwrap();
        assert_eq!(resp.status, 404);
        let resp = http::http_get(server.addr(), "/elsewhere", &[]).unwrap();
        assert_eq!(resp.status, 404);
        server.shutdown();
    }

    #[test]
    fn content_can_be_updated_live() {
        let origin = OriginServer::new();
        origin.add_content("v", b"one".to_vec());
        let server = origin.serve().unwrap();
        origin.add_content("v", b"two".to_vec());
        let resp = http::http_get(server.addr(), "/content/v", &[]).unwrap();
        assert_eq!(resp.body, b"two");
        server.shutdown();
    }
}
