//! Mobility support (§6.3): dynamic re-registration + range resumption.
//!
//! "With session management, applications can seamlessly work upon
//! reconnection ... with dynamic DNS updates, mobile servers must announce
//! their locations." Here:
//!
//! * [`MobileServer`] is a content server that can *move* — rebind on a new
//!   port (standing in for a new network attachment) and re-register its
//!   location with the resolver (the dynamic-DNS stand-in);
//! * [`resume_download`] is the client side: it fetches with `Range`
//!   requests, and on connection loss re-resolves the name and resumes from
//!   the last received byte, verifying piece digests as it goes.

use crate::chunk::ChunkedDigests;
use crate::crypto::mss::Identity;
use crate::crypto::sha256::digest;
use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::name::{ContentName, Principal};
use crate::resolver::{registration_bytes, Registration, Resolution, ResolverClient};
use crate::{Error, Result};
use parking_lot::Mutex;
use std::sync::Arc;

/// A content server that can change its network location.
pub struct MobileServer {
    identity: Mutex<Identity>,
    resolver: ResolverClient,
    name: ContentName,
    content: Arc<Vec<u8>>,
    digests: ChunkedDigests,
    server: Mutex<Option<HttpServer>>,
}

impl MobileServer {
    /// Creates the server for one object and performs the initial
    /// registration at its first location.
    pub fn start(
        identity: Identity,
        resolver: ResolverClient,
        label: &str,
        content: Vec<u8>,
        piece_size: usize,
    ) -> Result<Arc<Self>> {
        let principal = Principal(identity.principal_digest());
        let name = ContentName::new(label, principal)
            .ok_or_else(|| Error::Protocol(format!("bad label {label:?}")))?;
        let digests = ChunkedDigests::compute(&content, piece_size);
        let me = Arc::new(Self {
            identity: Mutex::new(identity),
            resolver,
            name,
            content: Arc::new(content),
            digests,
            server: Mutex::new(None),
        });
        me.attach()?;
        Ok(me)
    }

    /// The object's self-certifying name.
    pub fn name(&self) -> &ContentName {
        &self.name
    }

    /// The piece digests a client verifies against.
    pub fn digests(&self) -> &ChunkedDigests {
        &self.digests
    }

    /// The current serving address.
    pub fn addr(&self) -> Option<std::net::SocketAddr> {
        self.server.lock().as_ref().map(|s| s.addr())
    }

    /// Moves: tears down the current attachment, binds a fresh port, and
    /// re-registers the new location (dynamic-DNS style).
    pub fn relocate(self: &Arc<Self>) -> Result<()> {
        if let Some(old) = self.server.lock().take() {
            old.shutdown();
        }
        self.attach()
    }

    /// Disconnects without re-attaching (the mid-download handoff moment).
    pub fn detach(&self) {
        if let Some(old) = self.server.lock().take() {
            old.shutdown();
        }
    }

    fn attach(self: &Arc<Self>) -> Result<()> {
        let me = self.clone();
        let server = http::serve(Arc::new(move |req: &HttpRequest| me.handle(req)))?;
        let location = format!("http://{}/object", server.addr());
        *self.server.lock() = Some(server);

        let locations = vec![location];
        let mut id = self.identity.lock();
        let sig = id.sign(&digest(&registration_bytes(&self.name, &locations)));
        let root = id.root();
        drop(id);
        self.resolver.register(&Registration {
            name: self.name.clone(),
            locations,
            publisher_root: root,
            signature: sig,
        })?;
        Ok(())
    }

    fn handle(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "GET" || req.target != "/object" {
            return HttpResponse::not_found("only GET /object");
        }
        let total = self.content.len();
        match req.headers.get("range") {
            None => HttpResponse::ok(self.content.as_ref().clone()),
            Some(r) => match http::parse_range(r, total) {
                Some((s, e)) => {
                    let mut resp = HttpResponse::new(206, self.content[s..e].to_vec());
                    resp.headers
                        .set("Content-Range", http::content_range(s, e, total));
                    resp
                }
                None => HttpResponse::new(416, Vec::new()),
            },
        }
    }
}

/// Downloads `name` with ranged requests of `chunk` bytes, re-resolving and
/// resuming after connection failures (up to `max_retries`). Verifies the
/// final bytes against `digests`. Returns `(content, resumes)` where
/// `resumes` counts recovered interruptions.
pub fn resume_download(
    resolver: &ResolverClient,
    name: &ContentName,
    total_len: usize,
    chunk: usize,
    digests: &ChunkedDigests,
    max_retries: usize,
) -> Result<(Vec<u8>, usize)> {
    assert!(chunk > 0);
    let mut out: Vec<u8> = Vec::with_capacity(total_len);
    let mut resumes = 0usize;
    let mut retries = 0usize;
    while out.len() < total_len {
        let start = out.len();
        let end = (start + chunk).min(total_len);
        match fetch_range(resolver, name, start, end) {
            Ok(bytes) => {
                out.extend_from_slice(&bytes);
            }
            Err(_) if retries < max_retries => {
                // Connection lost or stale location: re-resolve and retry.
                retries += 1;
                resumes += 1;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    }
    if !digests.verify_full(&out) {
        return Err(Error::Verification(
            "resumed download failed digest check".into(),
        ));
    }
    Ok((out, resumes))
}

fn fetch_range(
    resolver: &ResolverClient,
    name: &ContentName,
    start: usize,
    end: usize,
) -> Result<Vec<u8>> {
    let locations = match resolver.resolve(name)? {
        Resolution::Locations(l) => l,
        Resolution::Delegation(d) => vec![d],
    };
    let url = locations
        .first()
        .ok_or_else(|| Error::NotFound(name.to_flat()))?;
    let (addr, path) = crate::proxy::parse_http_url(url)?;
    let range = format!("bytes={}-{}", start, end - 1);
    let resp = http::http_get(addr, &path, &[("Range", &range)])?;
    match resp.status {
        206 => Ok(resp.body),
        200 => Ok(resp.body[start.min(resp.body.len())..end.min(resp.body.len())].to_vec()),
        s => Err(Error::Protocol(format!("range fetch got {s}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::Resolver;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(content: Vec<u8>) -> (Arc<MobileServer>, ResolverClient, HttpServer) {
        let resolver = Resolver::new();
        let rsrv = resolver.serve().unwrap();
        let rc = ResolverClient::new(rsrv.addr());
        let id = Identity::generate(&mut StdRng::seed_from_u64(5), 4);
        let server = MobileServer::start(id, rc, "movie", content, 1024).unwrap();
        (server, rc, rsrv)
    }

    #[test]
    fn plain_download_works() {
        let content: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let (server, rc, _rsrv) = setup(content.clone());
        let (got, resumes) =
            resume_download(&rc, server.name(), content.len(), 4096, server.digests(), 0).unwrap();
        assert_eq!(got, content);
        assert_eq!(resumes, 0);
    }

    #[test]
    fn download_resumes_after_move() {
        let content: Vec<u8> = (0..50_000u32).map(|i| (i % 239) as u8).collect();
        let (server, rc, _rsrv) = setup(content.clone());
        let name = server.name().clone();
        let digests = server.digests().clone();
        let total = content.len();

        // Move the server mid-download from another thread.
        let mover = server.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            mover.detach();
            std::thread::sleep(std::time::Duration::from_millis(150));
            mover.relocate().unwrap();
        });

        let (got, _resumes) = resume_download(&rc, &name, total, 2048, &digests, 50).unwrap();
        handle.join().unwrap();
        assert_eq!(got, content, "bytes must survive the handoff intact");
    }

    #[test]
    fn relocation_changes_address_and_updates_resolver() {
        let (server, rc, _rsrv) = setup(b"tiny".to_vec());
        let addr1 = server.addr().unwrap();
        server.relocate().unwrap();
        let addr2 = server.addr().unwrap();
        assert_ne!(addr1, addr2, "new attachment point");
        // Resolver points at the new location.
        match rc.resolve(server.name()).unwrap() {
            Resolution::Locations(locs) => {
                assert!(locs[0].contains(&addr2.to_string()), "{locs:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detached_server_is_unreachable_until_relocate() {
        let content = vec![9u8; 5000];
        let (server, rc, _rsrv) = setup(content.clone());
        server.detach();
        let err = resume_download(&rc, server.name(), content.len(), 1024, server.digests(), 1);
        assert!(err.is_err(), "no retries left and nobody serving");
        server.relocate().unwrap();
        let (got, _) =
            resume_download(&rc, server.name(), content.len(), 1024, server.digests(), 3).unwrap();
        assert_eq!(got, content);
    }
}
