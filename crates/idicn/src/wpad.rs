//! Automatic proxy configuration (§6.2): WPAD discovery + PAC rules.
//!
//! Real deployments announce a Proxy Auto-Config URL through DHCP option
//! 252 or a well-known DNS name; the browser fetches the PAC file and calls
//! its JavaScript `FindProxyForURL(url, host)` per request. This module
//! keeps the exact same decision flow with two substitutions (documented in
//! DESIGN.md): discovery answers come from a loopback UDP responder
//! standing in for the DHCP server, and the PAC file is a declarative rule
//! list with `shExpMatch`-style glob patterns instead of JavaScript.

use crate::http::{self, HttpRequest, HttpResponse, HttpServer};
use crate::{Error, Result};
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

/// A proxy decision, mirroring PAC return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyDecision {
    /// `PROXY host:port` — send the request through this proxy.
    Proxy(SocketAddr),
    /// `DIRECT` — connect to the origin directly.
    Direct,
}

/// One PAC rule: a host glob pattern and the decision it selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacRule {
    /// `shExpMatch` pattern over the request host (`*` and `?` wildcards).
    pub host_pattern: String,
    /// Decision when the pattern matches.
    pub decision: ProxyDecision,
}

/// A declarative PAC file: first matching rule wins, `DIRECT` otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacFile {
    /// Ordered rules.
    pub rules: Vec<PacRule>,
}

/// Glob matcher with PAC `shExpMatch` semantics (`*` = any run, `?` = one
/// char), case-insensitive as host names are.
pub fn sh_exp_match(text: &str, pattern: &str) -> bool {
    fn matches(t: &[u8], p: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some(b'*'), _) => matches(t, &p[1..]) || (!t.is_empty() && matches(&t[1..], p)),
            (Some(b'?'), Some(_)) => matches(&t[1..], &p[1..]),
            (Some(&pc), Some(&tc)) => pc.eq_ignore_ascii_case(&tc) && matches(&t[1..], &p[1..]),
            (Some(_), None) => false,
        }
    }
    matches(text.as_bytes(), pattern.as_bytes())
}

impl PacFile {
    /// The PAC decision for a URL/host — the `FindProxyForURL` semantics.
    pub fn find_proxy_for_url(&self, _url: &str, host: &str) -> ProxyDecision {
        for rule in &self.rules {
            if sh_exp_match(host, &rule.host_pattern) {
                return rule.decision.clone();
            }
        }
        ProxyDecision::Direct
    }

    /// Serializes to the on-the-wire PAC format (one `pattern => decision`
    /// rule per line).
    pub fn serialize(&self) -> String {
        let mut out = String::from("# idicn-pac v1\n");
        for r in &self.rules {
            let d = match &r.decision {
                ProxyDecision::Proxy(addr) => format!("PROXY {addr}"),
                ProxyDecision::Direct => "DIRECT".to_string(),
            };
            out.push_str(&format!("{} => {}\n", r.host_pattern, d));
        }
        out
    }

    /// Parses the serialization from [`PacFile::serialize`].
    pub fn parse(text: &str) -> Result<Self> {
        let mut rules = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (pattern, decision) = line
                .split_once("=>")
                .ok_or_else(|| Error::Protocol(format!("bad PAC line {line:?}")))?;
            let decision = decision.trim();
            let decision = if decision.eq_ignore_ascii_case("direct") {
                ProxyDecision::Direct
            } else if let Some(addr) = decision.strip_prefix("PROXY ") {
                ProxyDecision::Proxy(
                    addr.trim()
                        .parse()
                        .map_err(|_| Error::Protocol(format!("bad proxy addr {addr:?}")))?,
                )
            } else {
                return Err(Error::Protocol(format!("bad PAC decision {decision:?}")));
            };
            rules.push(PacRule {
                host_pattern: pattern.trim().to_string(),
                decision,
            });
        }
        Ok(Self { rules })
    }

    /// The standard idICN PAC: route `*.idicn.org` through the edge proxy,
    /// everything else direct (legacy traffic untouched — the
    /// incremental-deployment property).
    pub fn idicn_default(proxy: SocketAddr) -> Self {
        Self {
            rules: vec![PacRule {
                host_pattern: "*.idicn.org".into(),
                decision: ProxyDecision::Proxy(proxy),
            }],
        }
    }
}

/// The WPAD discovery request magic.
const WPAD_QUERY: &[u8] = b"WPAD-DISCOVER";

/// A WPAD responder: answers discovery datagrams with the PAC URL (the
/// DHCP-option-252 stand-in) and serves the PAC file over HTTP.
pub struct WpadService {
    udp_addr: SocketAddr,
    _pac_server: HttpServer,
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WpadService {
    /// Starts the responder announcing `pac`.
    pub fn start(pac: PacFile) -> Result<Self> {
        let body = pac.serialize().into_bytes();
        let pac_server = http::serve(Arc::new(move |req: &HttpRequest| {
            if req.target == "/wpad.dat" {
                HttpResponse::ok(body.clone())
            } else {
                HttpResponse::not_found("only /wpad.dat")
            }
        }))?;
        let pac_url = format!("http://{}/wpad.dat", pac_server.addr());

        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let udp_addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(100)))?;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = stop.clone();
        let thread = std::thread::spawn(move || {
            let mut buf = [0u8; 512];
            while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                match socket.recv_from(&mut buf) {
                    Ok((n, from)) if &buf[..n] == WPAD_QUERY => {
                        let _ = socket.send_to(pac_url.as_bytes(), from);
                    }
                    _ => {}
                }
            }
        });
        Ok(Self {
            udp_addr,
            _pac_server: pac_server,
            stop,
            thread: Some(thread),
        })
    }

    /// The UDP address clients send discovery datagrams to.
    pub fn discovery_addr(&self) -> SocketAddr {
        self.udp_addr
    }
}

impl Drop for WpadService {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Client-side WPAD: discover the PAC URL over UDP, fetch and parse it.
/// This is what "hosts in idICN use WPAD to locate a URL of a PAC file"
/// boils down to.
pub fn discover_pac(discovery_addr: SocketAddr) -> Result<PacFile> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(Duration::from_secs(2)))?;
    socket.send_to(WPAD_QUERY, discovery_addr)?;
    let mut buf = [0u8; 512];
    let (n, _) = socket.recv_from(&mut buf)?;
    let url =
        std::str::from_utf8(&buf[..n]).map_err(|_| Error::Protocol("non-UTF8 PAC URL".into()))?;
    let (addr, path) = crate::proxy::parse_http_url(url)?;
    let resp = http::http_get(addr, &path, &[])?;
    if !resp.is_success() {
        return Err(Error::Protocol(format!(
            "PAC fetch failed: {}",
            resp.status
        )));
    }
    PacFile::parse(
        std::str::from_utf8(&resp.body).map_err(|_| Error::Protocol("non-UTF8 PAC file".into()))?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_semantics() {
        assert!(sh_exp_match("a.idicn.org", "*.idicn.org"));
        assert!(
            sh_exp_match("L.P.IDICN.ORG", "*.idicn.org"),
            "case-insensitive"
        );
        assert!(
            !sh_exp_match("idicn.org", "*.idicn.org"),
            "needs a subdomain"
        );
        assert!(sh_exp_match("abc", "a?c"));
        assert!(!sh_exp_match("ac", "a?c"));
        assert!(sh_exp_match("anything", "*"));
        assert!(sh_exp_match("", "*"));
        assert!(!sh_exp_match("x", ""));
    }

    #[test]
    fn pac_decision_order() {
        let p1: SocketAddr = "127.0.0.1:3128".parse().unwrap();
        let pac = PacFile {
            rules: vec![
                PacRule {
                    host_pattern: "*.idicn.org".into(),
                    decision: ProxyDecision::Proxy(p1),
                },
                PacRule {
                    host_pattern: "internal.*".into(),
                    decision: ProxyDecision::Direct,
                },
            ],
        };
        assert_eq!(
            pac.find_proxy_for_url("http://x.idicn.org/", "x.idicn.org"),
            ProxyDecision::Proxy(p1)
        );
        assert_eq!(
            pac.find_proxy_for_url("http://internal.corp/", "internal.corp"),
            ProxyDecision::Direct
        );
        assert_eq!(
            pac.find_proxy_for_url("http://example.com/", "example.com"),
            ProxyDecision::Direct,
            "default is DIRECT"
        );
    }

    #[test]
    fn pac_serialization_roundtrip() {
        let pac = PacFile::idicn_default("127.0.0.1:9".parse().unwrap());
        let text = pac.serialize();
        let parsed = PacFile::parse(&text).unwrap();
        assert_eq!(parsed, pac);
        assert!(PacFile::parse("no arrow here").is_err());
        assert!(PacFile::parse("pat => PROXY not-an-addr").is_err());
        assert!(PacFile::parse("# comment only\n").unwrap().rules.is_empty());
    }

    #[test]
    fn discovery_end_to_end() {
        let proxy_addr: SocketAddr = "127.0.0.1:3128".parse().unwrap();
        let service = WpadService::start(PacFile::idicn_default(proxy_addr)).unwrap();
        let pac = discover_pac(service.discovery_addr()).unwrap();
        assert_eq!(
            pac.find_proxy_for_url("http://x.y.idicn.org/", "x.y.idicn.org"),
            ProxyDecision::Proxy(proxy_addr)
        );
        assert_eq!(
            pac.find_proxy_for_url("http://legacy.example/", "legacy.example"),
            ProxyDecision::Direct
        );
    }
}
