//! A minimal blocking HTTP/1.1 implementation.
//!
//! idICN is an HTTP overlay, so this module provides exactly the subset the
//! design needs: request/response parsing and serialization with
//! `Content-Length` bodies, case-insensitive headers, `Range` /
//! `Content-Range` (for mobility resumption, §6.3), keep-alive connections,
//! and a small threaded server harness. No TLS, no chunked encoding —
//! content authenticity comes from the idICN signatures, not the channel,
//! which is precisely the paper's point about content-oriented security.
//!
//! Per the networking guides, these are few-connection loopback services:
//! blocking I/O plus a thread per connection is the simplest robust design
//! (async buys nothing here).

use crate::{Error, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted header section size (64 KiB of lines) — except that
/// idICN carries Merkle signatures (~25 KiB hex) in headers, so allow 1 MiB.
const MAX_HEADER_BYTES: usize = 1 << 20;
/// Maximum accepted body size (64 MiB).
const MAX_BODY_BYTES: usize = 64 << 20;

/// Deadline for establishing an outbound TCP connection. Loopback connects
/// either succeed or are refused immediately; the deadline guards against
/// black-holed addresses (a mobile server that moved away mid-transfer).
pub const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Default read/write deadline applied to **every** TCP stream this crate
/// touches, outbound and accepted alike — no socket may hang a worker
/// forever. The live value is process-wide and adjustable with
/// [`set_io_timeout`] (chaos tests shrink it so injected stalls resolve in
/// milliseconds instead of seconds).
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

static IO_TIMEOUT_MS: AtomicU64 = AtomicU64::new(5_000);

/// The current process-wide I/O deadline (defaults to [`IO_TIMEOUT`]).
pub fn io_timeout() -> Duration {
    Duration::from_millis(IO_TIMEOUT_MS.load(Ordering::Relaxed))
}

/// Overrides the process-wide I/O deadline. Sub-millisecond values clamp
/// up to 1 ms (a zero socket timeout would mean "block forever", the exact
/// opposite of a deadline).
pub fn set_io_timeout(deadline: Duration) {
    IO_TIMEOUT_MS.store(deadline.as_millis().max(1) as u64, Ordering::Relaxed);
}

/// Reclassifies I/O errors whose kind is a deadline expiry into
/// [`Error::Timeout`] so callers can tell "slow peer" from "broken pipe".
fn flag_timeout(e: Error) -> Error {
    match e {
        Error::Io(io)
            if io.kind() == std::io::ErrorKind::WouldBlock
                || io.kind() == std::io::ErrorKind::TimedOut =>
        {
            Error::Timeout(io)
        }
        other => other,
    }
}

/// An ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// Creates an empty header map.
    pub fn new() -> Self {
        Self::default()
    }

    /// First value of `name` (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Replaces all values of `name` with one value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.0.push((name.to_string(), value.into()));
    }

    /// Appends a value without removing existing ones.
    pub fn add(&mut self, name: &str, value: impl Into<String>) {
        self.0.push((name.to_string(), value.into()));
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An HTTP request message.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Method (GET, POST, ...).
    pub method: String,
    /// Request target (origin-form path or absolute URI in proxy requests).
    pub target: String,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A GET request for `target`.
    pub fn get(target: impl Into<String>) -> Self {
        Self {
            method: "GET".into(),
            target: target.into(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with a body.
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Self {
        Self {
            method: "POST".into(),
            target: target.into(),
            headers: Headers::new(),
            body,
        }
    }
}

/// An HTTP response message.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A response with the given status and body.
    pub fn new(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            reason: reason_phrase(status).to_string(),
            headers: Headers::new(),
            body,
        }
    }

    /// 200 OK with a body.
    pub fn ok(body: Vec<u8>) -> Self {
        Self::new(200, body)
    }

    /// 404 with a text body.
    pub fn not_found(msg: &str) -> Self {
        Self::new(404, msg.as_bytes().to_vec())
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        206 => "Partial Content",
        301 => "Moved Permanently",
        302 => "Found",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        416 => "Range Not Satisfiable",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn read_line_limited<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF
                }
                return Err(Error::Protocol("unexpected EOF mid-line".into()));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(Error::Protocol("header section too large".into()));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(
                        String::from_utf8(line)
                            .map_err(|_| Error::Protocol("non-UTF8 header line".into()))?,
                    ));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn read_headers<R: BufRead>(r: &mut R, budget: &mut usize) -> Result<Headers> {
    let mut headers = Headers::new();
    loop {
        let line = read_line_limited(r, budget)?
            .ok_or_else(|| Error::Protocol("EOF in headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Error::Protocol(format!("malformed header line {line:?}")))?;
        headers.add(name.trim(), value.trim().to_string());
    }
}

fn read_body<R: BufRead>(r: &mut R, headers: &Headers) -> Result<Vec<u8>> {
    let len: usize = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse()
            .map_err(|_| Error::Protocol(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(Error::Protocol(format!("body too large: {len}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            Error::Timeout(e)
        } else {
            // A body shorter than its Content-Length means the transport
            // died mid-transfer (peer crash, connection cut) — a transient
            // I/O failure worth retrying, not a protocol violation by a
            // healthy peer.
            Error::Io(e)
        }
    })?;
    Ok(body)
}

/// Reads one request; `Ok(None)` on clean EOF (closed keep-alive).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Option<HttpRequest>> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(Error::Protocol(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(Error::Protocol(format!("unsupported version {version:?}")));
    }
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers)?;
    Ok(Some(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// Writes a request, setting `Content-Length`.
pub fn write_request<W: Write>(w: &mut W, req: &HttpRequest) -> Result<()> {
    write!(w, "{} {} HTTP/1.1\r\n", req.method, req.target)?;
    for (n, v) in req.headers.iter() {
        if !n.eq_ignore_ascii_case("content-length") {
            write!(w, "{n}: {v}\r\n")?;
        }
    }
    write!(w, "Content-Length: {}\r\n\r\n", req.body.len())?;
    w.write_all(&req.body)?;
    w.flush()?;
    Ok(())
}

/// Reads one response; `Ok(None)` on clean EOF.
pub fn read_response<R: BufRead>(r: &mut R) -> Result<Option<HttpResponse>> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line_limited(r, &mut budget)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(Error::Protocol(format!("malformed status line {line:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Protocol(format!("bad status in {line:?}")))?;
    let reason = parts.next().unwrap_or("").to_string();
    let headers = read_headers(r, &mut budget)?;
    let body = read_body(r, &headers)?;
    Ok(Some(HttpResponse {
        status,
        reason,
        headers,
        body,
    }))
}

/// Writes a response, setting `Content-Length`.
pub fn write_response<W: Write>(w: &mut W, resp: &HttpResponse) -> Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason)?;
    for (n, v) in resp.headers.iter() {
        if !n.eq_ignore_ascii_case("content-length") {
            write!(w, "{n}: {v}\r\n")?;
        }
    }
    write!(w, "Content-Length: {}\r\n\r\n", resp.body.len())?;
    w.write_all(&resp.body)?;
    w.flush()?;
    Ok(())
}

/// Parses a `Range: bytes=...` header against a body of `total` bytes.
/// Returns the half-open satisfiable range, or `None` when absent/invalid.
/// Only single ranges are supported (all the mobility design needs).
pub fn parse_range(value: &str, total: usize) -> Option<(usize, usize)> {
    let spec = value.trim().strip_prefix("bytes=")?;
    let (lo, hi) = spec.split_once('-')?;
    if lo.is_empty() {
        // suffix form: last N bytes
        let n: usize = hi.parse().ok()?;
        if n == 0 {
            return None;
        }
        return Some((total.saturating_sub(n), total));
    }
    let start: usize = lo.parse().ok()?;
    if start >= total {
        return None;
    }
    let end = if hi.is_empty() {
        total
    } else {
        let e: usize = hi.parse().ok()?;
        (e + 1).min(total)
    };
    if end <= start {
        return None;
    }
    Some((start, end))
}

/// Formats a `Content-Range` header value for a half-open range.
pub fn content_range(start: usize, end: usize, total: usize) -> String {
    format!("bytes {}-{}/{}", start, end - 1, total)
}

/// Handler signature for [`serve`].
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A running HTTP server; dropped or shut down explicitly.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `127.0.0.1:0` and serves `handler` on a background thread, with
/// keep-alive support. Connections are handled one thread each — these are
/// loopback demo services, not internet-facing servers.
pub fn serve(handler: Handler) -> Result<HttpServer> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    serve_on(listener, handler)
}

/// Like [`serve`] but on a caller-provided listener.
pub fn serve_on(listener: TcpListener, handler: Handler) -> Result<HttpServer> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let accept_thread = std::thread::spawn(move || {
        while !flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let h = handler.clone();
                    let f = flag.clone();
                    std::thread::spawn(move || handle_connection(stream, h, f));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // 1 ms, not coarser: every fresh connection pays up to
                    // one poll interval of accept latency, and soak tests
                    // open four connections per end-to-end request.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        }
    });
    Ok(HttpServer {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(stream: TcpStream, handler: Handler, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    // Bounded read timeout so keep-alive connections notice shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // A stalled reader must not pin this worker thread forever either.
    let _ = stream.set_write_timeout(Some(io_timeout()));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while !shutdown.load(Ordering::SeqCst) {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                let close = req
                    .headers
                    .get("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                let resp = handler(&req);
                if write_response(&mut writer, &resp).is_err() || close {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(Error::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle keep-alive; poll the shutdown flag
            }
            Err(_) => {
                let _ = write_response(&mut writer, &HttpResponse::new(400, Vec::new()));
                return;
            }
        }
    }
}

/// One-shot GET helper: connects, sends, reads, closes.
pub fn http_get(addr: SocketAddr, target: &str, headers: &[(&str, &str)]) -> Result<HttpResponse> {
    let mut req = HttpRequest::get(target);
    for (n, v) in headers {
        req.headers.set(n, *v);
    }
    request_once(addr, &req)
}

/// One-shot request helper. Every outbound stream carries connect, read,
/// and write deadlines; a connection that cannot be established surfaces
/// as [`Error::Unreachable`], an expired deadline as [`Error::Timeout`].
pub fn request_once(addr: SocketAddr, req: &HttpRequest) -> Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).map_err(|e| {
        if e.kind() == std::io::ErrorKind::TimedOut || e.kind() == std::io::ErrorKind::WouldBlock {
            Error::Timeout(e)
        } else {
            Error::Unreachable(e)
        }
    })?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(io_timeout()))?;
    stream.set_write_timeout(Some(io_timeout()))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut req = req.clone();
    req.headers.set("Connection", "close");
    write_request(&mut writer, &req).map_err(flag_timeout)?;
    read_response(&mut reader)
        .map_err(flag_timeout)?
        .ok_or_else(|| Error::Protocol("server closed without response".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let mut req = HttpRequest::post("/publish", b"hello".to_vec());
        req.headers.set("X-Test", "1");
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let parsed = read_request(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.target, "/publish");
        assert_eq!(parsed.headers.get("x-test"), Some("1"));
        assert_eq!(parsed.body, b"hello");
    }

    #[test]
    fn response_roundtrip() {
        let mut resp = HttpResponse::ok(b"body".to_vec());
        resp.headers.set("X-Cache", "HIT");
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let parsed = read_response(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.headers.get("X-CACHE"), Some("HIT"));
        assert_eq!(parsed.body, b"body");
    }

    #[test]
    fn eof_yields_none() {
        assert!(read_request(&mut Cursor::new(Vec::<u8>::new()))
            .unwrap()
            .is_none());
        assert!(read_response(&mut Cursor::new(Vec::<u8>::new()))
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /\r\n\r\n",                         // missing version
            "GET / SPDY/3\r\n\r\n",                  // wrong protocol
            "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
        ] {
            assert!(
                read_request(&mut Cursor::new(bad.as_bytes().to_vec())).is_err(),
                "{bad:?}"
            );
        }
        // Bad content-length.
        let bad = "GET / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n";
        assert!(read_request(&mut Cursor::new(bad.as_bytes().to_vec())).is_err());
    }

    #[test]
    fn truncated_body_is_a_transient_io_error() {
        // A connection cut mid-body must classify as retryable transport
        // failure, not as a protocol violation.
        let bad = "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let err = read_request(&mut Cursor::new(bad.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err:?}");
        let bad = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        let err = read_response(&mut Cursor::new(bad.as_bytes().to_vec())).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "{err:?}");
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("bytes=0-99", 1000), Some((0, 100)));
        assert_eq!(parse_range("bytes=500-", 1000), Some((500, 1000)));
        assert_eq!(parse_range("bytes=-200", 1000), Some((800, 1000)));
        assert_eq!(parse_range("bytes=0-4", 3), Some((0, 3)), "clamped end");
        assert_eq!(parse_range("bytes=1000-", 1000), None, "start past end");
        assert_eq!(parse_range("bytes=5-2", 1000), None);
        assert_eq!(parse_range("items=0-1", 1000), None);
        assert_eq!(parse_range("bytes=-0", 1000), None);
        assert_eq!(content_range(0, 100, 1000), "bytes 0-99/1000");
    }

    #[test]
    fn header_case_insensitivity_and_set() {
        let mut h = Headers::new();
        h.add("Content-Type", "text/plain");
        h.add("content-type", "application/json");
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/plain"));
        h.set("Content-Type", "final");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("content-type"), Some("final"));
    }

    #[test]
    fn refused_connection_is_unreachable() {
        // Nothing listens on port 1; loopback refuses instantly. The error
        // class must say "service down", not a bare Io or NotFound.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = http_get(addr, "/", &[]).unwrap_err();
        assert!(matches!(err, Error::Unreachable(_)), "{err:?}");
        assert!(
            std::error::Error::source(&err).is_some(),
            "transport cause must chain through source()"
        );
    }

    #[test]
    fn deadline_expiries_are_reclassified() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let e = flag_timeout(Error::Io(std::io::Error::from(kind)));
            assert!(matches!(e, Error::Timeout(_)), "{kind:?}");
        }
        // Everything else passes through untouched.
        let e = flag_timeout(Error::Io(std::io::Error::from(
            std::io::ErrorKind::BrokenPipe,
        )));
        assert!(matches!(e, Error::Io(_)));
        let e = flag_timeout(Error::Protocol("x".into()));
        assert!(matches!(e, Error::Protocol(_)));
    }

    #[test]
    fn live_server_roundtrip_and_keepalive() {
        let server = serve(Arc::new(|req: &HttpRequest| {
            HttpResponse::ok(format!("you asked for {}", req.target).into_bytes())
        }))
        .unwrap();
        let addr = server.addr();
        // Two requests over one connection (keep-alive).
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for path in ["/a", "/b"] {
            write_request(&mut writer, &HttpRequest::get(path)).unwrap();
            let resp = read_response(&mut reader).unwrap().unwrap();
            assert_eq!(resp.body, format!("you asked for {path}").into_bytes());
        }
        drop(writer);
        drop(reader);
        // One-shot helper.
        let resp = http_get(addr, "/c", &[]).unwrap();
        assert_eq!(resp.body, b"you asked for /c");
        server.shutdown();
    }
}
