//! End-to-end request-ID propagation (PR 6).
//!
//! One request entering the overlay at the edge proxy must be traceable
//! through every hop: the proxy mints (or reuses) an ID, forwards it in
//! `X-IdICN-Request-Id` to the resolver and the reverse proxy, the reverse
//! proxy forwards it to the origin, and every component logs one access
//! line carrying that exact ID.

use idicn::crypto::mss::Identity;
use idicn::http::{self, HttpServer};
use idicn::origin::OriginServer;
use idicn::proxy::EdgeProxy;
use idicn::resolver::{Resolver, ResolverClient};
use idicn::reverse_proxy::ReverseProxy;
use idicn::REQUEST_ID_HEADER;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Rig {
    origin: OriginServer,
    _origin_srv: HttpServer,
    resolver: Resolver,
    _resolver_srv: HttpServer,
    rp: ReverseProxy,
    _rp_srv: HttpServer,
    proxy: EdgeProxy,
    proxy_srv: HttpServer,
}

fn rig() -> Rig {
    let origin = OriginServer::new();
    let origin_srv = origin.serve().unwrap();
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let rc = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(123), 4);
    let rp = ReverseProxy::new(identity, origin_srv.addr(), rc);
    let rp_srv = rp.serve().unwrap();
    let proxy = EdgeProxy::new(rc, 16);
    let proxy_srv = proxy.serve().unwrap();
    Rig {
        origin,
        _origin_srv: origin_srv,
        resolver,
        _resolver_srv: resolver_srv,
        rp,
        _rp_srv: rp_srv,
        proxy,
        proxy_srv,
    }
}

/// Lines in `log` whose `request_id` field equals `id`.
fn lines_with_id(log: &idicn::AccessLog, id: &str) -> Vec<String> {
    let needle = format!("\"request_id\":\"{id}\"");
    log.recent()
        .into_iter()
        .filter(|l| l.contains(&needle))
        .collect()
}

#[test]
fn one_request_id_survives_every_hop() {
    let rig = rig();
    rig.origin.add_content("traced", b"follow the id".to_vec());
    let name = rig.rp.publish("traced").unwrap();
    // Evict the reverse proxy's fresh copy so the fetch exercises the full
    // chain: proxy -> resolver -> reverse proxy -> origin.
    rig.rp.evict("traced");

    let id = "e2e-trace-0001";
    let resp = http::http_get(
        rig.proxy_srv.addr(),
        &format!("/fetch/{}", name.to_flat()),
        &[(REQUEST_ID_HEADER, id)],
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, b"follow the id");
    // The client-supplied ID is echoed back, not replaced.
    assert_eq!(resp.headers.get(REQUEST_ID_HEADER), Some(id));

    // Every hop logged exactly that ID.
    for (component, log) in [
        ("edge_proxy", rig.proxy.access_log()),
        ("resolver", rig.resolver.access_log()),
        ("reverse_proxy", rig.rp.access_log()),
        ("origin", rig.origin.access_log()),
    ] {
        let lines = lines_with_id(log, id);
        assert!(
            !lines.is_empty(),
            "{component} has no access-log line for {id}: {:?}",
            log.recent()
        );
        for line in &lines {
            assert!(
                line.contains(&format!("\"component\":\"{component}\"")),
                "{line}"
            );
        }
    }

    // The edge proxy's line records the miss, the upstream it fetched
    // from, and at least one attempt.
    let proxy_line = &lines_with_id(rig.proxy.access_log(), id)[0];
    assert!(proxy_line.contains("\"outcome\":\"miss\""), "{proxy_line}");
    assert!(proxy_line.contains("\"attempts\":1"), "{proxy_line}");
    assert!(proxy_line.contains("/fetch/"), "{proxy_line}");
    // The reverse proxy refetched from the origin under the same ID.
    let rp_line = &lines_with_id(rig.rp.access_log(), id)[0];
    assert!(
        rp_line.contains("\"outcome\":\"origin_refetch\""),
        "{rp_line}"
    );
    assert!(rp_line.contains("/content/traced"), "{rp_line}");
}

#[test]
fn proxy_mints_id_when_client_sends_none() {
    let rig = rig();
    rig.origin.add_content("auto", b"minted".to_vec());
    let name = rig.rp.publish("auto").unwrap();
    rig.rp.evict("auto");

    let resp = http::http_get(
        rig.proxy_srv.addr(),
        &format!("/fetch/{}", name.to_flat()),
        &[],
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let id = resp
        .headers
        .get(REQUEST_ID_HEADER)
        .expect("proxy must mint and echo a request ID")
        .to_string();
    assert!(!id.is_empty() && id != "-");

    // The minted ID reached every downstream hop.
    for log in [
        rig.proxy.access_log(),
        rig.resolver.access_log(),
        rig.rp.access_log(),
        rig.origin.access_log(),
    ] {
        assert!(
            !lines_with_id(log, &id).is_empty(),
            "missing {id} in {:?}",
            log.recent()
        );
    }
}

#[test]
fn cache_hit_logs_only_at_the_proxy() {
    let rig = rig();
    rig.origin.add_content("hot", b"cached".to_vec());
    let name = rig.rp.publish("hot").unwrap();

    // Warm the proxy cache.
    let warm = http::http_get(
        rig.proxy_srv.addr(),
        &format!("/fetch/{}", name.to_flat()),
        &[(REQUEST_ID_HEADER, "warmup-id")],
    )
    .unwrap();
    assert_eq!(warm.status, 200);

    let id = "hit-id-42";
    let resp = http::http_get(
        rig.proxy_srv.addr(),
        &format!("/fetch/{}", name.to_flat()),
        &[(REQUEST_ID_HEADER, id)],
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("x-cache"), Some("HIT"));
    assert_eq!(resp.headers.get(REQUEST_ID_HEADER), Some(id));

    let proxy_line = &lines_with_id(rig.proxy.access_log(), id)[0];
    assert!(proxy_line.contains("\"outcome\":\"hit\""), "{proxy_line}");
    assert!(proxy_line.contains("\"attempts\":0"), "{proxy_line}");
    assert!(proxy_line.contains("\"upstream\":null"), "{proxy_line}");
    // A hit never leaves the proxy: no downstream component saw the ID.
    for log in [
        rig.resolver.access_log(),
        rig.rp.access_log(),
        rig.origin.access_log(),
    ] {
        assert!(lines_with_id(log, id).is_empty());
    }
}

#[test]
fn metrics_scrapes_stay_out_of_access_logs_and_counters() {
    let rig = rig();
    rig.origin.add_content("page", b"bytes".to_vec());
    let name = rig.rp.publish("page").unwrap();
    let _ = http::http_get(
        rig.proxy_srv.addr(),
        &format!("/fetch/{}", name.to_flat()),
        &[],
    )
    .unwrap();
    let logged_before = rig.proxy.access_log().len();
    let requests_before = rig.proxy.stats().requests;

    let scrape = http::http_get(rig.proxy_srv.addr(), "/metrics", &[]).unwrap();
    assert_eq!(scrape.status, 200);
    let body = String::from_utf8(scrape.body).unwrap();
    assert!(
        body.contains("component=\"edge_proxy\""),
        "scrape body: {body}"
    );

    assert_eq!(rig.proxy.access_log().len(), logged_before);
    assert_eq!(rig.proxy.stats().requests, requests_before);
}
