//! Chaos soak: thousands of requests through the full Figure 11 pipeline
//! with a deterministic fault injector on the wire between the edge proxy
//! and the reverse proxy.
//!
//! The [`idicn::chaos::ChaosProxy`] resets connections, stalls past the
//! I/O deadline, truncates bodies mid-transfer, and flips content bytes.
//! The overlay must absorb all of it: no hang, no panic, transient faults
//! retried or circuit-broken, counters consistent — and every corrupted
//! body caught by signature verification before anything caches or serves
//! it. A client must never observe wrong bytes, only (rare) failures.

use idicn::chaos::{ChaosPolicy, ChaosProxy};
use idicn::crypto::mss::Identity;
use idicn::crypto::sha256::digest;
use idicn::http::{self, HttpServer};
use idicn::name::ContentName;
use idicn::origin::OriginServer;
use idicn::proxy::{fetch_verified, EdgeProxy};
use idicn::resolver::{registration_bytes, Registration, Resolver, ResolverClient};
use idicn::retry::{CircuitBreaker, RetryPolicy};
use idicn::reverse_proxy::ReverseProxy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The publisher identity's RNG seed. Generating the identity twice from
/// this seed yields the same principal and Merkle root, which lets the
/// test re-sign registrations that point at the chaos proxy instead of
/// the reverse proxy — interposing on the wire without any component
/// knowing.
const IDENTITY_SEED: u64 = 2013;

struct Rig {
    origin: OriginServer,
    _origin_srv: HttpServer,
    resolver: Resolver,
    _resolver_srv: HttpServer,
    rp: ReverseProxy,
    _rp_srv: HttpServer,
    rp_addr: std::net::SocketAddr,
}

fn rig() -> Rig {
    let origin = OriginServer::new();
    let origin_srv = origin.serve().unwrap();
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let rc = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(IDENTITY_SEED), 5);
    let rp = ReverseProxy::new(identity, origin_srv.addr(), rc);
    let rp_srv = rp.serve().unwrap();
    let rp_addr = rp_srv.addr();
    Rig {
        origin,
        _origin_srv: origin_srv,
        resolver,
        _resolver_srv: resolver_srv,
        rp,
        _rp_srv: rp_srv,
        rp_addr,
    }
}

/// Publishes `labels` through the reverse proxy, then re-registers each
/// name so resolution points at `front` (the chaos proxy) instead of the
/// reverse proxy, signing with the twin identity.
fn publish_behind(rig: &Rig, front: std::net::SocketAddr, labels: &[&str]) -> Vec<ContentName> {
    let mut signer = Identity::generate(&mut StdRng::seed_from_u64(IDENTITY_SEED), 5);
    labels
        .iter()
        .map(|label| {
            let name = rig.rp.publish(label).unwrap();
            let locations = vec![format!("http://{front}/fetch/{}", name.to_flat())];
            let signature = signer.sign(&digest(&registration_bytes(&name, &locations)));
            rig.resolver
                .register(&Registration {
                    name: name.clone(),
                    locations,
                    publisher_root: signer.root(),
                    signature,
                })
                .unwrap();
            name
        })
        .collect()
}

fn content_for(label: &str, len: usize) -> Vec<u8> {
    let tag = label.as_bytes();
    (0..len)
        .map(|i| tag[i % tag.len()] ^ (i % 251) as u8)
        .collect()
}

#[test]
fn soak_survives_mixed_chaos_and_catches_every_corruption() {
    // Millisecond-scale deadline so injected stalls resolve fast; this is
    // a dedicated test process, so the global override races nothing.
    http::set_io_timeout(Duration::from_millis(150));
    let rig = rig();
    let labels = ["alpha", "beta", "gamma"];
    let bodies: Vec<Vec<u8>> = labels.iter().map(|l| content_for(l, 1536)).collect();
    for (label, body) in labels.iter().zip(&bodies) {
        rig.origin.add_content(label, body.clone());
    }

    let chaos = ChaosProxy::new(
        rig.rp_addr,
        ChaosPolicy {
            seed: 0xc4a0_5001,
            reset_rate: 0.02,
            stall_rate: 0.01,
            truncate_rate: 0.02,
            corrupt_rate: 0.02,
        },
    );
    let chaos_srv = chaos.serve().unwrap();
    let names = publish_behind(&rig, chaos_srv.addr(), &labels);

    // Capacity 0: every request goes upstream, so every request is
    // exposed to the chaos layer. Tight retry/breaker so faults resolve
    // in milliseconds.
    let rc = ResolverClient::new(rig._resolver_srv.addr());
    let retry = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    let proxy = EdgeProxy::new_with(
        rc,
        0,
        retry,
        CircuitBreaker::new(4, Duration::from_millis(50)),
    );
    let proxy_srv = proxy.serve().unwrap();

    const REQUESTS: u64 = 2_000;
    let started = Instant::now();
    let mut successes = 0u64;
    let mut failures = 0u64;
    for i in 0..REQUESTS {
        let which = (i % names.len() as u64) as usize;
        match fetch_verified(proxy_srv.addr(), &names[which]) {
            Ok((body, metadata, _)) => {
                // A success must be the authentic bytes — corruption can
                // fail a request but can never poison one.
                assert_eq!(body, bodies[which], "request {i}: wrong bytes served");
                assert_eq!(metadata.name, names[which]);
                successes += 1;
            }
            Err(_) => failures += 1,
        }
    }
    let elapsed = started.elapsed();

    // No hang: the soak completes in bounded time even with ~1% of
    // connections stalling past the deadline (generous CI allowance).
    assert!(
        elapsed < Duration::from_secs(120),
        "soak took {elapsed:?} — something stalled unbounded"
    );
    assert_eq!(successes + failures, REQUESTS);
    assert!(
        successes > REQUESTS * 3 / 4,
        "chaos should dent, not destroy, availability: {successes}/{REQUESTS}"
    );

    // Injection counters are consistent: every accepted connection got
    // exactly one decision, and with 2 000+ draws every class fired.
    let cs = chaos.stats();
    assert_eq!(
        cs.connections,
        cs.forwards + cs.resets + cs.stalls + cs.truncates + cs.corruptions,
        "every connection classified exactly once: {cs:?}"
    );
    assert!(
        cs.connections >= REQUESTS,
        "at least one connection per request"
    );
    assert!(
        cs.resets > 0 && cs.stalls > 0 && cs.truncates > 0 && cs.corruptions > 0,
        "all fault classes must actually fire: {cs:?}"
    );

    // THE headline invariant: every delivered corruption was caught by
    // signature verification at the edge — nothing slipped into the cache
    // or out to a client (the per-request byte check above proved that).
    let stats = proxy.stats();
    assert_eq!(
        stats.verify_failures, cs.corruptions,
        "each flipped byte caught exactly once: proxy {stats:?} vs chaos {cs:?}"
    );

    // Proxy-side counters stay coherent under fire.
    assert_eq!(stats.requests, REQUESTS);
    assert_eq!(stats.hits, 0, "capacity-0 proxy cannot hit");
    assert_eq!(stats.misses, REQUESTS, "every request exercised upstream");
    assert_eq!(stats.in_flight, 0, "no request left dangling");
    assert!(
        stats.retries > 0,
        "transient injections must be visible as retries: {stats:?}"
    );
}

#[test]
fn certain_corruption_never_reaches_a_client() {
    http::set_io_timeout(Duration::from_millis(150));
    let rig = rig();
    rig.origin
        .add_content("poisoned", content_for("poisoned", 900));

    // Every single connection corrupts one body byte.
    let chaos = ChaosProxy::new(
        rig.rp_addr,
        ChaosPolicy {
            corrupt_rate: 1.0,
            ..ChaosPolicy::calm(9)
        },
    );
    let chaos_srv = chaos.serve().unwrap();
    let names = publish_behind(&rig, chaos_srv.addr(), &["poisoned"]);

    let rc = ResolverClient::new(rig._resolver_srv.addr());
    let proxy = EdgeProxy::new_with(
        rc,
        16,
        RetryPolicy::none(),
        CircuitBreaker::new(3, Duration::from_millis(50)),
    );
    let proxy_srv = proxy.serve().unwrap();

    for _ in 0..20 {
        let err = fetch_verified(proxy_srv.addr(), &names[0]).unwrap_err();
        // The edge refuses to serve unverifiable bytes; the client sees a
        // failed request, never a poisoned body.
        let msg = err.to_string();
        assert!(!msg.is_empty());
    }
    let stats = proxy.stats();
    assert_eq!(
        stats.verify_failures, 20,
        "all 20 corruptions caught: {stats:?}"
    );
    assert_eq!(chaos.stats().corruptions, 20);
    assert_eq!(
        proxy.cached_objects(),
        0,
        "corrupted bytes must never enter the cache"
    );
}

#[test]
fn certain_resets_fail_transiently_and_calm_chaos_is_invisible() {
    http::set_io_timeout(Duration::from_millis(150));
    let rig = rig();
    rig.origin.add_content("steady", content_for("steady", 700));

    // Pass-through chaos must be undetectable end-to-end.
    let calm = ChaosProxy::new(rig.rp_addr, ChaosPolicy::calm(11));
    let calm_srv = calm.serve().unwrap();
    let names = publish_behind(&rig, calm_srv.addr(), &["steady"]);
    let rc = ResolverClient::new(rig._resolver_srv.addr());
    let proxy = EdgeProxy::new_with(
        rc,
        0,
        RetryPolicy::none(),
        CircuitBreaker::new(3, Duration::from_secs(60)),
    );
    let proxy_srv = proxy.serve().unwrap();
    for _ in 0..10 {
        let (body, _, _) = fetch_verified(proxy_srv.addr(), &names[0]).unwrap();
        assert_eq!(body, content_for("steady", 700));
    }
    let cs = calm.stats();
    assert_eq!(cs.forwards, cs.connections);
    assert_eq!(proxy.stats().verify_failures, 0);
}
