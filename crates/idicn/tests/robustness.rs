//! End-to-end failure-path tests for the idICN overlay (PR 4).
//!
//! Each test kills a real component mid-workload — the edge proxy, the
//! resolver, a registered mirror, the mobile server — and asserts that the
//! client still retrieves correct, signature-verified content, and that the
//! retry / circuit-breaker / fallback events show up in telemetry.

use idicn::chunk::ChunkedDigests;
use idicn::crypto::mss::Identity;
use idicn::crypto::sha256::digest;
use idicn::http::{self, HttpRequest, HttpResponse, HttpServer};
use idicn::metalink::Metadata;
use idicn::mobility::{resume_download, MobileServer};
use idicn::name::{ContentName, Principal};
use idicn::origin::OriginServer;
use idicn::proxy::{fetch_verified, fetch_verified_with_fallback, EdgeProxy, FetchOutcome};
use idicn::resolver::{registration_bytes, Registration, Resolver, ResolverClient};
use idicn::retry::{CircuitBreaker, RetryPolicy};
use idicn::reverse_proxy::ReverseProxy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

struct Rig {
    origin: OriginServer,
    _origin_srv: HttpServer,
    resolver_srv: HttpServer,
    rp: ReverseProxy,
    _rp_srv: HttpServer,
    proxy: EdgeProxy,
    proxy_srv: HttpServer,
}

fn rig(capacity: usize) -> Rig {
    let origin = OriginServer::new();
    let origin_srv = origin.serve().unwrap();
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let rc = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(77), 4);
    let rp = ReverseProxy::new(identity, origin_srv.addr(), rc);
    let rp_srv = rp.serve().unwrap();
    let proxy = EdgeProxy::new(rc, capacity);
    let proxy_srv = proxy.serve().unwrap();
    Rig {
        origin,
        _origin_srv: origin_srv,
        resolver_srv,
        rp,
        _rp_srv: rp_srv,
        proxy,
        proxy_srv,
    }
}

/// An address that refuses connections: bind, read the port, drop the
/// listener. Nothing re-binds it during the test.
fn dead_url() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    format!("http://{addr}/object")
}

#[test]
fn client_falls_back_to_origin_when_proxy_dies() {
    let rig = rig(16);
    rig.origin
        .add_content("news", b"the proxy is not a point of failure".to_vec());
    let name = rig.rp.publish("news").unwrap();
    let rc = ResolverClient::new(rig.resolver_srv.addr());

    let proxy_addr = rig.proxy_srv.addr();
    let (body, _, outcome) = fetch_verified_with_fallback(proxy_addr, &rc, &name).unwrap();
    assert_eq!(outcome, FetchOutcome::ProxyMiss);
    assert_eq!(body, b"the proxy is not a point of failure");

    // Kill the edge proxy mid-workload. The client's next fetch hits a
    // refused connection and walks down the ladder: resolve the name
    // itself, fetch from the registered location, verify the signature.
    drop(rig.proxy_srv);
    let (body, metadata, outcome) = fetch_verified_with_fallback(proxy_addr, &rc, &name).unwrap();
    assert_eq!(outcome, FetchOutcome::DirectOrigin);
    assert_eq!(body, b"the proxy is not a point of failure");
    assert_eq!(metadata.name, name, "verified end-to-end, right object");
}

#[test]
fn proxy_survives_resolver_outage_via_cached_registrations() {
    // Capacity 0: every request misses the object cache, so every request
    // needs a resolution — the resolver outage is actually exercised.
    let rig = rig(0);
    rig.origin.add_content("evergreen", b"still here".to_vec());
    let name = rig.rp.publish("evergreen").unwrap();

    // One successful fetch seeds the proxy's known-locations table.
    let (body, _, _) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
    assert_eq!(body, b"still here");

    // Kill the resolver. The proxy now answers from its last known
    // registration; content verification still gates what it serves.
    drop(rig.resolver_srv);
    let (body, _, _) = fetch_verified(rig.proxy_srv.addr(), &name).unwrap();
    assert_eq!(body, b"still here");

    let stats = rig.proxy.stats();
    assert!(
        stats.resolver_fallbacks >= 1,
        "fallback must be visible in stats: {stats:?}"
    );
    let snap = rig.proxy.telemetry();
    assert!(
        snap.counters["proxy.resolver_fallbacks"] >= 1,
        "and in the telemetry snapshot"
    );
}

#[test]
fn dead_mirror_is_retried_then_circuit_broken() {
    // A name registered at two locations: a dead one first, then a live
    // server under the same identity. The proxy must retry the dead
    // mirror, fail over to the live one, and eventually stop hammering
    // the dead one (open circuit) — all visible in telemetry.
    let content = b"served from the second mirror".to_vec();
    let mut identity = Identity::generate(&mut StdRng::seed_from_u64(9), 4);
    let principal = Principal(identity.principal_digest());
    let name = ContentName::new("mirrored", principal).unwrap();
    let digests = ChunkedDigests::compute(&content, 1024);
    let metadata = Metadata {
        name: name.clone(),
        digests: digests.clone(),
        publisher_root: identity.root(),
        signature: identity.sign(&digest(&name.binding_bytes(&digests.full))),
        mirrors: Vec::new(),
    };

    // The live mirror serves the content with its Metalink headers.
    let served = Arc::new(content.clone());
    let served_md = metadata.clone();
    let live_srv = http::serve(Arc::new(move |_req: &HttpRequest| {
        let mut resp = HttpResponse::ok(served.as_ref().clone());
        served_md.to_headers(&mut resp.headers);
        resp
    }))
    .unwrap();

    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let rc = ResolverClient::new(resolver_srv.addr());
    let locations = vec![dead_url(), format!("http://{}/object", live_srv.addr())];
    let sig = identity.sign(&digest(&registration_bytes(&name, &locations)));
    rc.register(&Registration {
        name: name.clone(),
        locations,
        publisher_root: identity.root(),
        signature: sig,
    })
    .unwrap();

    // Tight policy so the test runs in milliseconds: 2 attempts per
    // location, breaker opens after 2 consecutive failed fetches, long
    // cooldown so the third fetch definitely sees it open.
    let retry = RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    let proxy = EdgeProxy::new_with(
        rc,
        0,
        retry,
        CircuitBreaker::new(2, Duration::from_secs(60)),
    );

    for _ in 0..3 {
        let (body, md, _) = proxy.fetch(&name).unwrap();
        assert_eq!(
            body.as_ref(),
            &content,
            "every fetch fails over to the live mirror"
        );
        assert_eq!(md.name, name);
    }

    let stats = proxy.stats();
    assert!(stats.retries >= 2, "dead mirror was retried: {stats:?}");
    assert_eq!(
        stats.breaker_opens, 1,
        "circuit opened exactly once: {stats:?}"
    );
    assert!(
        stats.breaker_skips >= 1,
        "open circuit short-circuited at least one fetch: {stats:?}"
    );
    let snap = proxy.telemetry();
    assert!(snap.counters["proxy.retries"] >= 2);
    assert_eq!(snap.counters["proxy.breaker_opens"], 1);
    assert!(snap.counters["proxy.breaker_skips"] >= 1);
}

#[test]
fn relocation_mid_download_resumes_byte_identical() {
    let content: Vec<u8> = (0..60_000u32).map(|i| (i % 241) as u8).collect();
    let resolver = Resolver::new();
    let resolver_srv = resolver.serve().unwrap();
    let rc = ResolverClient::new(resolver_srv.addr());
    let identity = Identity::generate(&mut StdRng::seed_from_u64(6), 4);
    let server = MobileServer::start(identity, rc, "film", content.clone(), 1024).unwrap();
    let name = server.name().clone();
    let digests = server.digests().clone();

    // Detach before the download starts (so at least one chunk fetch is
    // guaranteed to fail), then relocate from another thread while the
    // client is mid-retry — the relocate-during-download moment.
    server.detach();
    let mover = server.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        mover.relocate().unwrap();
    });

    let (got, resumes) = resume_download(&rc, &name, content.len(), 2048, &digests, 200).unwrap();
    handle.join().unwrap();
    assert_eq!(got, content, "resumed bytes must be identical");
    assert!(
        resumes > 0,
        "the outage must actually have been resumed over"
    );
}
