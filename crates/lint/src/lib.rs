//! `icn-lint` — workspace-aware static analysis for project invariants
//! that `clippy` cannot express.
//!
//! The paper's quantitative claims rest on a simulator whose runs must be
//! bit-reproducible and whose libraries must not hide panic paths; this
//! crate audits exactly those policies (see DESIGN.md, "Static analysis"
//! and "Semantic analysis"):
//!
//! Per-file rules (token patterns over the masked source):
//!
//! * **`no-panic-in-lib`** — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in library crates
//!   (`core`, `cache`, `topology`, `workload`, `analysis`, `obs`,
//!   `idicn`). Tests, benches, and binaries are exempt.
//! * **`deterministic-core`** — no wall clocks (`SystemTime`,
//!   `Instant::now`), no unseeded entropy (`thread_rng`, `from_entropy`),
//!   and no `HashMap`/`HashSet` (iteration-order leaks) in `crates/core`
//!   and `crates/cache`, outside the `obs`-gated `instrument.rs`.
//! * **`feature-gate-obs`** — every `icn_obs` reference in `crates/core`
//!   must sit under `#[cfg(feature = "obs")]` or in `instrument.rs`, so
//!   `--no-default-features` keeps compiling instrumentation to nothing.
//! * **`vendor-frozen`** — the offline stand-ins under `vendor/` may not
//!   drift without an explicit hash bump in `lint.toml`.
//! * **`allow-needs-reason`** — every suppression must say why.
//!
//! Interprocedural rules (item [`parser`] → workspace [`symtab`] →
//! conservative [`callgraph`]):
//!
//! * **`deterministic-core-reach`** — taint reachability from the
//!   configured entry points (`Simulator::run`, `sweep::run_cells*`,
//!   `FaultSchedule`, `CostTable::new`) to nondeterminism sources hidden
//!   behind helpers in *any* universe crate, with the full call chain in
//!   the diagnostic (see [`reach`]).
//! * **`unsafe-audit`** — every `unsafe` needs an adjacent `// SAFETY:`
//!   justification and an entry in the committed `[unsafe] sites`
//!   inventory (see [`audit`]).
//! * **`hot-path-alloc`** — allocation constructs banned in the
//!   configured hot-path functions and their direct callees (see
//!   [`hotpath`]).
//! * **`stale-allow`** — a `lint:allow` that suppresses nothing is itself
//!   an error (engine-level; see [`engine`]).
//!
//! Matching runs on a lexed view of the source (comments and string/char
//! literals blanked, see [`lexer`]), so rules never fire inside literals
//! or comments. A site is suppressed with an inline
//! `// lint:allow(<rule>): <reason>` directive; whole known violations are
//! grandfathered in the committed `lint.toml` baseline, which only ever
//! shrinks.

#![warn(missing_docs)]

pub mod audit;
pub mod callgraph;
pub mod config;
pub mod engine;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod source;
pub mod symtab;

pub use config::Config;
pub use engine::{scan, Report};
pub use rules::Violation;
