//! Workspace symbol table: every `fn` item, keyed by its full module path.
//!
//! Built from the per-file [`crate::parser`] output plus each file's
//! position in the workspace: `crates/core/src/sim.rs` contributes
//! functions under `icn_core::sim::...` (crate names come from each
//! crate's `Cargo.toml`, module segments from the file path and inline
//! `mod` nesting, `Simulator::run` style suffixes from `impl` blocks).
//! The table is what lets config entries like
//! `icn_core::sweep::run_cells*` or `FaultSchedule` name real functions,
//! and what the call graph resolves against.

use crate::parser::ParsedFile;
use crate::rules::FileOrigin;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One file, analysed and parsed, with its workspace position resolved.
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Lexical analysis (masking, test/obs regions, allows).
    pub source: SourceFile,
    /// Item-level parse.
    pub parsed: ParsedFile,
    /// `crates/<dir>` component, if any (e.g. `core`).
    pub crate_dir: Option<String>,
    /// Rust crate name (e.g. `icn_core`), underscored.
    pub crate_name: String,
    /// Module path of the file itself (e.g. `["sim"]` for `src/sim.rs`,
    /// empty for `src/lib.rs`).
    pub file_mods: Vec<String>,
    /// True for files outside `src/` (tests, benches, examples, bins):
    /// their fns exist but never join the deterministic-core universe.
    pub non_lib: bool,
}

impl FileUnit {
    /// Builds a unit from a path, its source text, and the
    /// directory→crate-name map (see [`crate_names`]).
    pub fn build(rel: &str, src: &str, names: &BTreeMap<String, String>) -> Self {
        let source = SourceFile::analyze(src);
        let parsed = crate::parser::parse(&source.masked);
        let origin = FileOrigin::of(rel);
        let crate_dir = origin.crate_name.map(str::to_string);
        let crate_name = match &crate_dir {
            Some(dir) => names
                .get(dir)
                .cloned()
                .unwrap_or_else(|| default_crate_name(dir)),
            None => "crate".to_string(),
        };
        let (file_mods, non_lib) = file_module_path(origin.in_crate);
        Self {
            rel: rel.to_string(),
            source,
            parsed,
            crate_dir,
            crate_name,
            file_mods,
            non_lib,
        }
    }

    /// File name component (`sim.rs`).
    pub fn file_name(&self) -> &str {
        self.rel.rsplit('/').next().unwrap_or(&self.rel)
    }
}

/// Fallback crate name for a `crates/<dir>` directory without a readable
/// `Cargo.toml` (fixtures): `core` → `icn_core`, but directories already
/// carrying `icn` (like `idicn`) stay as-is.
pub fn default_crate_name(dir: &str) -> String {
    let base = if dir.contains("icn") {
        dir.to_string()
    } else {
        format!("icn_{dir}")
    };
    base.replace('-', "_")
}

/// Module segments contributed by a file's path inside its crate, and
/// whether the file is outside the library tree. `src/lib.rs` and
/// `src/main.rs` contribute none; `src/a/b.rs` and `src/a/b/mod.rs`
/// contribute `["a", "b"]`; `tests/...`/`benches/...` contribute their
/// stem but are marked non-lib.
fn file_module_path(in_crate: &str) -> (Vec<String>, bool) {
    let (tree, non_lib) = match in_crate.strip_prefix("src/") {
        Some(rest) if !rest.starts_with("bin/") => (rest, false),
        _ => (in_crate, true),
    };
    let mut mods: Vec<String> = tree
        .strip_suffix(".rs")
        .unwrap_or(tree)
        .split('/')
        .map(str::to_string)
        .collect();
    if mods.last().is_some_and(|m| m == "mod") {
        mods.pop();
    }
    if mods.last().is_some_and(|m| m == "lib" || m == "main") {
        mods.pop();
    }
    if non_lib {
        // Drop the leading `src/bin`/`tests`/`benches`/`examples`
        // directories; the remaining stem only needs to be unique, not
        // meaningful.
        while mods.len() > 1
            && matches!(
                mods[0].as_str(),
                "src" | "bin" | "tests" | "benches" | "examples"
            )
        {
            mods.remove(0);
        }
    }
    (mods, non_lib)
}

/// One function definition in the workspace.
pub struct FnDef {
    /// Index into the engine's `FileUnit` list.
    pub unit: usize,
    /// Full path: `icn_core::sim::Simulator::run`.
    pub path: String,
    /// Bare name (`run`).
    pub name: String,
    /// Self type for methods (`Simulator`).
    pub type_name: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Body byte span in the file's source, when present.
    pub body: Option<(usize, usize)>,
    /// Defined in test-only code (`#[cfg(test)]` region, `#[test]` fn, or
    /// a non-`src/` file).
    pub is_test: bool,
}

/// All function definitions in the workspace, with lookup indices.
pub struct SymbolTable {
    /// Every definition; indices are stable handles.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Collects every `fn` from the parsed units.
    pub fn build(units: &[FileUnit]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (ui, u) in units.iter().enumerate() {
            for f in &u.parsed.fns {
                let mut segs: Vec<&str> = Vec::new();
                segs.push(&u.crate_name);
                segs.extend(u.file_mods.iter().map(String::as_str));
                segs.extend(f.modules.iter().map(String::as_str));
                if let Some(t) = &f.type_name {
                    segs.push(t);
                }
                segs.push(&f.name);
                let id = fns.len();
                fns.push(FnDef {
                    unit: ui,
                    path: segs.join("::"),
                    name: f.name.clone(),
                    type_name: f.type_name.clone(),
                    line: f.line,
                    body: f.body,
                    is_test: u.non_lib || u.source.is_test_line(f.line),
                });
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }
        Self { fns, by_name }
    }

    /// All definitions with the given bare name.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Definitions whose full path ends with the given segments (so
    /// `["Simulator", "run"]` matches `icn_core::sim::Simulator::run`).
    pub fn resolve_suffix(&self, segs: &[&str]) -> Vec<usize> {
        let Some(last) = segs.last() else {
            return Vec::new();
        };
        self.by_name(last)
            .iter()
            .copied()
            .filter(|&id| path_ends_with(&self.fns[id].path, segs))
            .collect()
    }

    /// Resolves a config entry to definitions. Supported shapes:
    /// - `icn_core::sim::Simulator::run` — exact path suffix;
    /// - `icn_core::sweep::run_cells*` — trailing `*` prefix-matches the
    ///   final segment (`run_cells`, `run_cells_with`, ...);
    /// - `icn_core::fault::FaultSchedule` — a type or module: matches every
    ///   fn whose path continues with exactly one more segment.
    pub fn resolve_entry(&self, entry: &str) -> Vec<usize> {
        let segs: Vec<&str> = entry.split("::").collect();
        if segs.is_empty() {
            return Vec::new();
        }
        if let Some(stem) = segs.last().and_then(|s| s.strip_suffix('*')) {
            let prefix: Vec<&str> = segs[..segs.len() - 1].to_vec();
            return self
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.name.starts_with(stem) && {
                        let mut whole = prefix.clone();
                        whole.push(&f.name);
                        path_ends_with(&f.path, &whole)
                    }
                })
                .map(|(id, _)| id)
                .collect();
        }
        let exact = self.resolve_suffix(&segs);
        if !exact.is_empty() {
            return exact;
        }
        // Container form: all fns directly inside the named type/module.
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                let mut whole = segs.clone();
                whole.push(&f.name);
                path_ends_with(&f.path, &whole)
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// True when `path` (`a::b::c`) ends with the segment sequence `segs`.
fn path_ends_with(path: &str, segs: &[&str]) -> bool {
    let parts: Vec<&str> = path.split("::").collect();
    segs.len() <= parts.len() && parts[parts.len() - segs.len()..] == segs[..]
}

/// Reads the `name = "..."` of each `crates/<dir>/Cargo.toml` under `root`,
/// keyed by directory name, with `-` normalized to `_`.
pub fn crate_names(root: &std::path::Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        for line in manifest.lines() {
            let line = line.trim();
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start();
                if let Some(v) = v.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    out.insert(dir_name.to_string(), v.replace('-', "_"));
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(rel: &str, src: &str) -> FileUnit {
        FileUnit::build(rel, src, &BTreeMap::new())
    }

    #[test]
    fn paths_combine_crate_file_mods_and_impl_type() {
        let u = unit(
            "crates/core/src/sim.rs",
            "impl Simulator {\n    pub fn run(&mut self) {}\n}\nfn helper() {}\nmod inner {\n    fn deep() {}\n}\n",
        );
        let tab = SymbolTable::build(&[u]);
        let paths: Vec<&str> = tab.fns.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "icn_core::sim::Simulator::run",
                "icn_core::sim::helper",
                "icn_core::sim::inner::deep",
            ]
        );
    }

    #[test]
    fn lib_rs_contributes_no_module_segment() {
        let u = unit("crates/cache/src/lib.rs", "pub fn touch() {}\n");
        let tab = SymbolTable::build(&[u]);
        assert_eq!(tab.fns[0].path, "icn_cache::touch");
    }

    #[test]
    fn test_files_and_cfg_test_fns_are_marked() {
        let a = unit("crates/core/tests/equiv.rs", "fn check() {}\n");
        let b = unit(
            "crates/core/src/sim.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        let tab = SymbolTable::build(&[a, b]);
        let by_path: BTreeMap<&str, bool> = tab
            .fns
            .iter()
            .map(|f| (f.path.as_str(), f.is_test))
            .collect();
        assert!(by_path["icn_core::equiv::check"]);
        assert!(!by_path["icn_core::sim::lib"]);
        assert!(by_path["icn_core::sim::tests::t"]);
    }

    #[test]
    fn suffix_resolution_matches_partial_paths() {
        let u = unit(
            "crates/core/src/sweep.rs",
            "pub fn run_cells() {}\npub fn run_cells_with() {}\npub fn run_cells_reported() {}\n",
        );
        let tab = SymbolTable::build(&[u]);
        assert_eq!(tab.resolve_suffix(&["sweep", "run_cells"]).len(), 1);
        assert_eq!(tab.resolve_suffix(&["run_cells_with"]).len(), 1);
        assert!(tab.resolve_suffix(&["other", "run_cells"]).is_empty());
    }

    #[test]
    fn entry_glob_and_container_forms() {
        let u = unit(
            "crates/core/src/fault.rs",
            "pub struct FaultSchedule;\nimpl FaultSchedule {\n    pub fn new() {}\n    pub fn is_down() {}\n}\npub fn free() {}\n",
        );
        let v = unit(
            "crates/core/src/sweep.rs",
            "pub fn run_cells() {}\npub fn run_cells_with() {}\n",
        );
        let tab = SymbolTable::build(&[u, v]);
        assert_eq!(tab.resolve_entry("icn_core::sweep::run_cells*").len(), 2);
        assert_eq!(tab.resolve_entry("fault::FaultSchedule").len(), 2);
        assert_eq!(tab.resolve_entry("FaultSchedule::new").len(), 1);
        assert!(tab.resolve_entry("icn_core::nothing").is_empty());
    }

    #[test]
    fn crate_name_fallback_heuristic() {
        assert_eq!(default_crate_name("core"), "icn_core");
        assert_eq!(default_crate_name("idicn"), "idicn");
        assert_eq!(default_crate_name("icn-lint"), "icn_lint");
    }

    #[test]
    fn bin_and_bench_files_are_non_lib() {
        let a = unit("crates/bench/src/bin/fig6.rs", "fn main() {}\n");
        let b = unit("crates/core/benches/hot.rs", "fn spin() {}\n");
        let c = unit("crates/core/src/sim.rs", "fn lib() {}\n");
        assert!(a.non_lib);
        assert!(b.non_lib);
        assert!(!c.non_lib);
    }
}
