//! Workspace scan: walks `crates/*/src` and `vendor/*`, builds the symbol
//! table and call graph, applies the per-file and interprocedural rules,
//! reconciles against the `lint.toml` baseline and unsafe inventory, and
//! renders reports.
//!
//! The engine also owns the `stale-allow` rule: every rule pass reports
//! which `lint:allow` directives it actually honored
//! ([`rules::Suppressed`]), and a directive credited by no rule at all is
//! itself a violation — a suppression that suppresses nothing only exists
//! to hide a future regression.

use crate::config::Config;
use crate::rules::{self, Violation};
use crate::symtab::{self, FileUnit, SymbolTable};
use crate::{audit, callgraph, hotpath, reach};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The outcome of one workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the baseline — these fail the run.
    pub new: Vec<Violation>,
    /// Violations matched by a baseline entry (reported, not fatal).
    pub baselined: Vec<Violation>,
    /// Baseline entries whose violation no longer exists (fixed code with
    /// a leftover entry) — prune these from `lint.toml`.
    pub stale: Vec<String>,
    /// `[unsafe] sites` inventory entries with no matching `unsafe` in the
    /// code any more — prune these from `lint.toml`.
    pub stale_unsafe: Vec<String>,
    /// Current justified unsafe sites (feeds `--write-baseline`).
    pub unsafe_inventory: Vec<String>,
    /// Files scanned.
    pub files: usize,
    /// Wall-clock milliseconds per rule pass, in execution order
    /// (`graph` covers parse + symbol table + call graph).
    pub timings: Vec<(&'static str, f64)>,
    /// Total scan wall-clock milliseconds (for `--budget-ms`).
    pub elapsed_ms: f64,
}

impl Report {
    /// True when CI should pass.
    pub fn ok(&self) -> bool {
        self.new.is_empty()
    }

    /// `rule → count` over the *new* violations.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.new {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// `rule → count` over the baselined (grandfathered) violations.
    pub fn baselined_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.baselined {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.new {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
        }
        for e in &self.stale {
            let _ = writeln!(out, "stale baseline entry (fixed — remove it): {e}");
        }
        for e in &self.stale_unsafe {
            let _ = writeln!(
                out,
                "stale [unsafe] inventory entry (gone — remove it): {e}"
            );
        }
        let _ = writeln!(
            out,
            "icn-lint: {} file(s), {} new violation(s), {} baselined, {} stale ({:.0} ms)",
            self.files,
            self.new.len(),
            self.baselined.len(),
            self.stale.len() + self.stale_unsafe.len(),
            self.elapsed_ms,
        );
        if !self.baselined.is_empty() {
            let per: Vec<String> = self
                .baselined_counts()
                .iter()
                .map(|(r, n)| format!("{r}={n}"))
                .collect();
            let _ = writeln!(out, "baseline burn-down remaining: {}", per.join(" "));
        }
        out
    }

    /// Machine-readable report (`--json`): violation list plus per-rule
    /// counts for burn-down tracking.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"files\":{},\"new_total\":{},\"baselined_total\":{},\"stale_total\":{},",
            self.files,
            self.new.len(),
            self.baselined.len(),
            self.stale.len()
        );
        out.push_str("\"new_counts\":{");
        push_count_map(&mut out, &self.counts());
        out.push_str("},\"baselined_counts\":{");
        push_count_map(&mut out, &self.baselined_counts());
        out.push_str("},\"violations\":[");
        for (i, v) in self.new.iter().chain(&self.baselined).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"baselined\":{},\"message\":\"{}\"}}",
                v.rule,
                json_escape(&v.path),
                v.line,
                i >= self.new.len(),
                json_escape(&v.message)
            );
        }
        out.push_str("],\"stale\":[");
        for (i, e) in self.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(e));
        }
        out.push_str("],\"stale_unsafe\":[");
        for (i, e) in self.stale_unsafe.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(e));
        }
        out.push_str("],\"timings_ms\":{");
        for (i, (rule, ms)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{rule}\":{ms:.3}");
        }
        let _ = write!(out, "}},\"elapsed_ms\":{:.3}}}", self.elapsed_ms);
        out
    }
}

fn push_count_map(out: &mut String, m: &BTreeMap<&'static str, usize>) {
    for (i, (rule, n)) in m.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{rule}\":{n}");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Scans the workspace at `root` against `config`.
pub fn scan(root: &Path, config: &Config) -> io::Result<Report> {
    let t_scan = Instant::now();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let mut outcome = rules::RuleOutcome::default();

    // Pass 1: read, lex, and parse every file; build the workspace view.
    let t = Instant::now();
    let names = symtab::crate_names(root);
    let mut units: Vec<FileUnit> = Vec::new();
    for file in rust_sources(root)? {
        let rel = rel_path(root, &file);
        let src = fs::read_to_string(&file)?;
        units.push(FileUnit::build(&rel, &src, &names));
    }
    let tab = SymbolTable::build(&units);
    let graph = callgraph::CallGraph::build(&units, &tab);
    timings.push(("graph", ms_since(t)));

    // Pass 2: per-file content rules, one timed sweep per rule.
    for rule in rules::CONTENT_RULES {
        let t = Instant::now();
        for u in &units {
            outcome.merge(rules::check_rule(rule, &u.rel, &u.source));
        }
        timings.push((rule, ms_since(t)));
    }

    // Interprocedural rules.
    let t = Instant::now();
    outcome.merge(reach::check(&units, &tab, &graph, &config.reach_entries));
    timings.push((rules::REACH, ms_since(t)));

    let t = Instant::now();
    outcome.merge(hotpath::check(&units, &tab, &graph, &config.hot_path));
    timings.push((rules::HOT_PATH_ALLOC, ms_since(t)));

    let t = Instant::now();
    let (unsafe_outcome, stale_unsafe, unsafe_inventory) =
        audit::check(&units, &config.unsafe_sites);
    outcome.merge(unsafe_outcome);
    timings.push((rules::UNSAFE_AUDIT, ms_since(t)));

    // stale-allow: a directive no rule credited suppresses nothing.
    let t = Instant::now();
    outcome
        .violations
        .extend(stale_allows(&units, &outcome.suppressed));
    timings.push((rules::STALE_ALLOW, ms_since(t)));

    let t = Instant::now();
    let mut violations = outcome.violations;
    violations.extend(vendor_violations(root, config)?);
    timings.push((rules::VENDOR_FROZEN, ms_since(t)));

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let mut report = Report {
        files: units.len(),
        stale_unsafe,
        unsafe_inventory,
        timings,
        ..Report::default()
    };
    let mut used = vec![false; config.baseline.len()];
    for v in violations {
        match config.baseline.iter().position(|e| *e == v.key()) {
            Some(i) => {
                used[i] = true;
                report.baselined.push(v);
            }
            None => report.new.push(v),
        }
    }
    report.stale = config
        .baseline
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    report.elapsed_ms = ms_since(t_scan);
    Ok(report)
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0
}

/// Directives that no rule pass credited with a suppression. A directive
/// covers its own line and the one below (mirroring
/// [`crate::source::SourceFile::is_allowed`]), so it is *used* when any of
/// its named rules recorded a suppressed match on either line.
fn stale_allows(units: &[FileUnit], suppressed: &[rules::Suppressed]) -> Vec<Violation> {
    let index: BTreeSet<(&str, usize, &str)> = suppressed
        .iter()
        .map(|s| (s.path.as_str(), s.line, s.rule))
        .collect();
    let mut out = Vec::new();
    for unit in units {
        for d in &unit.source.allows {
            let used = d.rules.iter().any(|r| {
                index.contains(&(unit.rel.as_str(), d.line, r.as_str()))
                    || index.contains(&(unit.rel.as_str(), d.line + 1, r.as_str()))
            });
            if !used {
                out.push(Violation {
                    rule: rules::STALE_ALLOW,
                    path: unit.rel.clone(),
                    line: d.line,
                    message: format!(
                        "lint:allow({}) suppresses nothing — the code it excused is \
                         gone or out of the rule's scope; remove the directive",
                        d.rules.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// A config whose baseline and unsafe inventory cover exactly the current
/// findings and whose vendor digests match the current tree
/// (`--write-baseline`). Reach entries and hot-path roots are policy, not
/// findings: they are copied through verbatim.
pub fn regenerate_baseline(root: &Path, config: &Config) -> io::Result<Config> {
    // First pass discovers the current justified unsafe sites.
    let probe = Config {
        baseline: Vec::new(),
        vendor: config.vendor.clone(),
        reach_entries: config.reach_entries.clone(),
        hot_path: config.hot_path.clone(),
        unsafe_sites: Vec::new(),
    };
    let inventory = scan(root, &probe)?.unsafe_inventory;

    // Second pass against that inventory: what remains is the baseline.
    let with_inventory = Config {
        unsafe_sites: inventory.clone(),
        ..probe
    };
    let report = scan(root, &with_inventory)?;
    let mut fresh = Config {
        reach_entries: config.reach_entries.clone(),
        hot_path: config.hot_path.clone(),
        unsafe_sites: inventory,
        ..Config::default()
    };
    for v in report.new.iter().filter(|v| v.rule != rules::VENDOR_FROZEN) {
        fresh.baseline.push(v.key());
    }
    fresh.baseline.sort();
    fresh.vendor = vendor_digests(root)?;
    Ok(fresh)
}

/// All `.rs` files under `crates/*/{src,tests,benches}` and the root
/// `src`/`tests`, sorted for deterministic reports.
fn rust_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                walk_rs(&dir, &mut out)?;
            }
        }
    }
    for top in ["src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// FNV-1a digest over the sorted relative paths and contents of every file
/// in one vendored crate.
fn digest_dir(dir: &Path) -> io::Result<u64> {
    let mut files = Vec::new();
    walk_all(dir, &mut files)?;
    files.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for f in &files {
        eat(rel_path(dir, f).as_bytes());
        eat(&[0]);
        eat(&fs::read(f)?);
        eat(&[0]);
    }
    Ok(h)
}

fn walk_all(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk_all(&path, out)?;
            }
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Current digests of every `vendor/<name>` crate.
pub fn vendor_digests(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let vendor = root.join("vendor");
    if !vendor.is_dir() {
        return Ok(out);
    }
    for entry in fs::read_dir(&vendor)? {
        let dir = entry?.path();
        if dir.is_dir() {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            out.insert(name, format!("{:016x}", digest_dir(&dir)?));
        }
    }
    Ok(out)
}

fn vendor_violations(root: &Path, config: &Config) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (name, hash) in vendor_digests(root)? {
        let path = format!("vendor/{name}");
        match config.vendor.get(&name) {
            Some(frozen) if *frozen == hash => {}
            Some(_) => out.push(Violation {
                rule: rules::VENDOR_FROZEN,
                path,
                line: 0,
                message: format!(
                    "vendored crate `{name}` changed; if intentional, bump its hash \
                     in lint.toml (--write-baseline)"
                ),
            }),
            None => out.push(Violation {
                rule: rules::VENDOR_FROZEN,
                path,
                line: 0,
                message: format!(
                    "vendored crate `{name}` has no frozen hash in lint.toml \
                     (--write-baseline to record it)"
                ),
            }),
        }
    }
    Ok(out)
}
