//! Conservative call graph over the workspace symbol table.
//!
//! Call sites are extracted lexically from each function body (masked
//! view, so strings and comments contribute nothing): `path::to::f(...)`,
//! `recv.method(...)`, `Type::assoc(...)`, with turbofish skipped and
//! macro invocations excluded. Resolution is deliberately
//! *over-approximate* — a `.method(` call with no receiver type
//! information links to every same-named method in the workspace — because
//! the consumer is a taint-reachability rule where a missed edge is a
//! silent false negative but a spurious edge is at worst a suppressible
//! diagnostic. Precision comes from tiering, not type inference:
//!
//! 1. `self.m(...)` inside `impl T` prefers methods of `T`;
//! 2. bare `f(...)` prefers, in order: a fn in the same file module, a
//!    `use`-imported fn, a same-crate fn, and only then any fn;
//! 3. qualified paths resolve by path suffix (after expanding `crate`,
//!    `Self`, and import aliases).
//!
//! Edges record their call-site line plus whether the site is obs-gated or
//! test-only, so reachability can stop at exactly the boundaries the
//! per-file rules already honor.

use crate::parser::{tokenize, TokKind, Token};
use crate::symtab::{FileUnit, SymbolTable};

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee definition (index into [`SymbolTable::fns`]).
    pub callee: usize,
    /// 1-indexed call-site line in the caller's file.
    pub line: usize,
}

/// Call edges per function definition, indexed like [`SymbolTable::fns`].
pub struct CallGraph {
    /// `edges[caller]` — sorted by `(callee, line)`, deduplicated.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Extracts and resolves every call site in every function body.
    pub fn build(units: &[FileUnit], tab: &SymbolTable) -> Self {
        let mut edges: Vec<Vec<Edge>> = (0..tab.fns.len()).map(|_| Vec::new()).collect();
        for (caller, def) in tab.fns.iter().enumerate() {
            let Some((start, end)) = def.body else {
                continue;
            };
            let unit = &units[def.unit];
            let body = &unit.source.masked.code[start..end];
            for call in extract_calls(body) {
                let line = unit.source.masked.line_of(start + call.offset);
                // Calls on test-only lines (a `#[cfg(test)]` helper inside
                // a lib fn's span cannot occur, but gated assertions can)
                // and obs-gated lines never happen in the deterministic
                // default build, so they contribute no edges.
                if unit.source.is_test_line(line) || unit.source.is_obs_gated(line) {
                    continue;
                }
                for callee in resolve(&call, unit, def.type_name.as_deref(), tab) {
                    edges[caller].push(Edge { callee, line });
                }
            }
            edges[caller].sort_by_key(|e| (e.callee, e.line));
            edges[caller].dedup_by_key(|e| e.callee);
        }
        Self { edges }
    }
}

/// A lexically-extracted call site (offsets relative to the body slice).
#[derive(Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written (`["Self", "min_candidate"]`, `["go"]`).
    pub segs: Vec<String>,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
    /// True when the method receiver is literally `self`.
    pub self_recv: bool,
    /// Byte offset of the first path segment within the body.
    pub offset: usize,
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALLS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "async", "await", "unsafe", "in", "as", "where", "impl", "dyn", "box",
    "yield",
];

/// Extracts call sites from one body's masked text.
pub fn extract_calls(body: &str) -> Vec<CallSite> {
    let toks = tokenize(body);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if !matches!(t.kind, TokKind::Ident { .. }) {
            i += 1;
            continue;
        }
        // Only start at the leftmost segment of a path.
        if i >= 2 && toks[i - 1].is_punct(b':') && toks[i - 2].is_punct(b':') {
            i += 1;
            continue;
        }
        let start = i;
        let mut segs = vec![ident_text(&t, body)];
        let mut j = i + 1;
        loop {
            if !is_path_sep(&toks, j) {
                break;
            }
            let after = j + 2;
            // `::<turbofish>` — skip the generic args; the path may
            // continue with another `::` (e.g. `Vec::<u8>::new`).
            if toks.get(after).is_some_and(|t| t.is_punct(b'<')) {
                j = skip_angles_toks(&toks, after);
                continue;
            }
            match toks.get(after) {
                Some(nt) if matches!(nt.kind, TokKind::Ident { .. }) => {
                    segs.push(ident_text(nt, body));
                    j = after + 1;
                }
                _ => break,
            }
        }
        let is_call = toks.get(j).is_some_and(|t| t.is_punct(b'('));
        let is_macro = toks.get(j).is_some_and(|t| t.is_punct(b'!'));
        if is_call && !is_macro {
            let method = segs.len() == 1 && prev_is_dot(&toks, start);
            let keyword = segs.len() == 1
                && matches!(t.kind, TokKind::Ident { raw: false })
                && NON_CALLS.contains(&segs[0].as_str());
            if !keyword {
                let self_recv = method
                    && start >= 2
                    && toks[start - 2].is_kw(body, "self")
                    && !prev_is_dot(&toks, start - 2);
                out.push(CallSite {
                    segs,
                    method,
                    self_recv,
                    offset: t.start,
                });
            }
        }
        i = j.max(i + 1);
    }
    out
}

fn ident_text(t: &Token, body: &str) -> String {
    t.ident_name(body).unwrap_or("").to_string()
}

/// True when `toks[i]`/`toks[i+1]` are the two colons of a `::`.
fn is_path_sep(toks: &[Token], i: usize) -> bool {
    i + 1 < toks.len() && toks[i].is_punct(b':') && toks[i + 1].is_punct(b':')
}

fn prev_is_dot(toks: &[Token], i: usize) -> bool {
    i >= 1 && toks[i - 1].is_punct(b'.')
}

/// Skips a `<...>` group starting at token `open` (which is `<`); returns
/// the index one past the matching `>`.
fn skip_angles_toks(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    let mut prev_dash = false;
    while i < toks.len() {
        if toks[i].is_punct(b'<') {
            depth += 1;
        } else if toks[i].is_punct(b'>') && !prev_dash {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        prev_dash = toks[i].is_punct(b'-');
        i += 1;
    }
    i
}

/// Resolves one call site to candidate definitions.
fn resolve(
    call: &CallSite,
    unit: &FileUnit,
    impl_type: Option<&str>,
    tab: &SymbolTable,
) -> Vec<usize> {
    if call.method {
        let name = call.segs[0].as_str();
        if call.self_recv {
            if let Some(ty) = impl_type {
                let own: Vec<usize> = tab
                    .by_name(name)
                    .iter()
                    .copied()
                    .filter(|&id| tab.fns[id].type_name.as_deref() == Some(ty))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        // Unknown receiver: any same-named *method* in the workspace.
        return tab
            .by_name(name)
            .iter()
            .copied()
            .filter(|&id| tab.fns[id].type_name.is_some())
            .collect();
    }

    // Expand leading `crate` / `Self` / `super`; `self::` just drops.
    let mut segs: Vec<String> = call.segs.clone();
    if let Some(first) = segs.first().cloned() {
        match first.as_str() {
            "crate" => segs[0] = unit.crate_name.clone(),
            "Self" => match impl_type {
                Some(ty) => segs[0] = ty.to_string(),
                None => return Vec::new(),
            },
            "self" => {
                segs.remove(0);
            }
            "super" => {
                segs.remove(0);
            }
            _ => {}
        }
    }
    if segs.is_empty() {
        return Vec::new();
    }

    if segs.len() == 1 {
        return resolve_bare(&segs[0], unit, tab);
    }

    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let direct = tab.resolve_suffix(&seg_refs);
    if !direct.is_empty() {
        return direct;
    }
    // The first segment may be an import alias: `sweep::run_cells` under
    // `use icn_core::sweep;` resolves via the import's full path.
    for imp in &unit.parsed.imports {
        if imp.alias == segs[0] {
            let mut full: Vec<&str> = imp
                .path
                .iter()
                .filter(|s| *s != "crate" && *s != "self" && *s != "super")
                .map(String::as_str)
                .collect();
            full.extend(seg_refs[1..].iter().copied());
            let via = tab.resolve_suffix(&full);
            if !via.is_empty() {
                return via;
            }
        }
    }
    Vec::new()
}

/// Bare `f(...)`: same file module, then imports, then same crate, then
/// any free fn of that name.
fn resolve_bare(name: &str, unit: &FileUnit, tab: &SymbolTable) -> Vec<usize> {
    let ids = tab.by_name(name);
    let free: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| tab.fns[id].type_name.is_none())
        .collect();

    let mut local_prefix = vec![unit.crate_name.clone()];
    local_prefix.extend(unit.file_mods.iter().cloned());
    let local_path = {
        let mut p = local_prefix.clone();
        p.push(name.to_string());
        p.join("::")
    };
    let local: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| tab.fns[id].path == local_path || in_module(&tab.fns[id].path, &local_path))
        .collect();
    if !local.is_empty() {
        return local;
    }

    for imp in &unit.parsed.imports {
        if imp.alias == name {
            let full: Vec<&str> = imp
                .path
                .iter()
                .filter(|s| *s != "crate" && *s != "self" && *s != "super")
                .map(String::as_str)
                .collect();
            let via = tab.resolve_suffix(&full);
            if !via.is_empty() {
                return via;
            }
        }
    }

    let crate_prefix = format!("{}::", unit.crate_name);
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| tab.fns[id].path.starts_with(&crate_prefix))
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    free
}

/// True when `path` is `local_path` plus inline-module nesting below the
/// same file module (covers fns in nested `mod` blocks of the same file).
fn in_module(path: &str, local_path: &str) -> bool {
    let Some((module, name)) = local_path.rsplit_once("::") else {
        return false;
    };
    path.starts_with(module) && path.ends_with(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn unit(rel: &str, src: &str) -> FileUnit {
        FileUnit::build(rel, src, &BTreeMap::new())
    }

    fn graph(units: &[FileUnit]) -> (SymbolTable, CallGraph) {
        let tab = SymbolTable::build(units);
        let g = CallGraph::build(units, &tab);
        (tab, g)
    }

    fn callees<'a>(tab: &'a SymbolTable, g: &CallGraph, caller_path: &str) -> Vec<&'a str> {
        let caller = tab
            .fns
            .iter()
            .position(|f| f.path == caller_path)
            .unwrap_or_else(|| panic!("no fn {caller_path}"));
        g.edges[caller]
            .iter()
            .map(|e| tab.fns[e.callee].path.as_str())
            .collect()
    }

    #[test]
    fn extracts_paths_methods_and_skips_macros() {
        let calls = extract_calls("{ helper(); x.touch(); a::b::go(); println!(\"no\"); }");
        let names: Vec<String> = calls.iter().map(|c| c.segs.join("::")).collect();
        assert_eq!(names, vec!["helper", "touch", "a::b::go"]);
        assert!(calls[1].method);
        assert!(!calls[1].self_recv);
    }

    #[test]
    fn self_method_and_turbofish() {
        let calls = extract_calls("{ self.step(); Vec::<u8>::new(); iter.collect::<Vec<_>>(); }");
        assert!(calls.iter().any(|c| c.segs == ["step"] && c.self_recv));
        // Turbofish paths still count as calls on the base path.
        assert!(calls.iter().any(|c| c.segs == ["collect"] && c.method));
    }

    #[test]
    fn keywords_are_not_calls() {
        let calls = extract_calls("{ if (x) { return (y); } match (z) { _ => {} } }");
        assert!(calls.is_empty(), "{calls:?}");
    }

    #[test]
    fn same_file_bare_call_resolves_locally() {
        let u = unit(
            "crates/core/src/sim.rs",
            "fn outer() { helper() }\nfn helper() {}\n",
        );
        let (tab, g) = graph(&[u]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sim::outer"),
            vec!["icn_core::sim::helper"]
        );
    }

    #[test]
    fn cross_module_call_via_import() {
        let a = unit(
            "crates/core/src/sim.rs",
            "use crate::timing::tick;\nfn run() { tick() }\n",
        );
        let b = unit("crates/core/src/timing.rs", "pub fn tick() {}\n");
        let (tab, g) = graph(&[a, b]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sim::run"),
            vec!["icn_core::timing::tick"]
        );
    }

    #[test]
    fn qualified_module_call_resolves_by_suffix() {
        let a = unit(
            "crates/core/src/sweep.rs",
            "fn drive() { crate::sim::enter() }\n",
        );
        let b = unit("crates/core/src/sim.rs", "pub fn enter() {}\n");
        let (tab, g) = graph(&[a, b]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sweep::drive"),
            vec!["icn_core::sim::enter"]
        );
    }

    #[test]
    fn self_receiver_prefers_current_impl_type() {
        let u = unit(
            "crates/core/src/sim.rs",
            "impl Simulator {\n    fn run(&mut self) { self.step() }\n    fn step(&mut self) {}\n}\nimpl Other {\n    fn step(&mut self) {}\n}\n",
        );
        let (tab, g) = graph(&[u]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sim::Simulator::run"),
            vec!["icn_core::sim::Simulator::step"]
        );
    }

    #[test]
    fn unknown_receiver_over_approximates_to_all_methods() {
        let a = unit(
            "crates/core/src/sim.rs",
            "fn poke(c: &mut dyn Policy) { c.touch() }\n",
        );
        let b = unit(
            "crates/cache/src/lru.rs",
            "impl Lru {\n    pub fn touch(&mut self) {}\n}\n",
        );
        let c = unit(
            "crates/cache/src/fifo.rs",
            "impl Fifo {\n    pub fn touch(&mut self) {}\n}\nfn touch() {}\n",
        );
        let (tab, g) = graph(&[a, b, c]);
        let got = callees(&tab, &g, "icn_core::sim::poke");
        assert!(got.contains(&"icn_cache::lru::Lru::touch"));
        assert!(got.contains(&"icn_cache::fifo::Fifo::touch"));
        // The free fn is not a method and is not a candidate.
        assert!(!got.contains(&"icn_cache::fifo::touch"));
    }

    #[test]
    fn self_type_qualified_call() {
        let u = unit(
            "crates/core/src/sim.rs",
            "impl Simulator {\n    fn pick(&self) { Self::min_candidate() }\n    fn min_candidate() {}\n}\n",
        );
        let (tab, g) = graph(&[u]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sim::Simulator::pick"),
            vec!["icn_core::sim::Simulator::min_candidate"]
        );
    }

    #[test]
    fn obs_gated_and_test_call_sites_contribute_no_edges() {
        let u = unit(
            "crates/core/src/sim.rs",
            "fn run() {\n    #[cfg(feature = \"obs\")]\n    timed();\n    plain();\n}\nfn timed() {}\nfn plain() {}\n",
        );
        let (tab, g) = graph(&[u]);
        assert_eq!(
            callees(&tab, &g, "icn_core::sim::run"),
            vec!["icn_core::sim::plain"]
        );
    }

    #[test]
    fn cross_crate_call_via_use() {
        let a = unit(
            "crates/bench/src/bin/fig6.rs",
            "use icn_core::sweep::run_cells;\nfn main() { run_cells() }\n",
        );
        let b = unit("crates/core/src/sweep.rs", "pub fn run_cells() {}\n");
        let (tab, g) = graph(&[a, b]);
        assert_eq!(
            callees(&tab, &g, "icn_bench::fig6::main"),
            vec!["icn_core::sweep::run_cells"]
        );
    }
}
