//! `lint.toml`: the committed baseline of known violations and the frozen
//! digests of vendored crates.
//!
//! The format is a deliberately tiny TOML subset (this workspace builds
//! offline, so no `toml` crate): two tables, a string array, and string
//! values. `icn-lint --write-baseline` regenerates the file; humans only
//! ever *delete* entries (burning the baseline down) or accept a vendor
//! hash bump alongside an intentional vendor edit.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Config {
    /// Known violations, as `rule:path:line` keys. Matching violations are
    /// reported but do not fail the run; fixing one and leaving the entry
    /// behind is reported as a stale entry.
    pub baseline: Vec<String>,
    /// Frozen content digest per vendored crate (`vendor/<name>`).
    pub vendor: BTreeMap<String, String>,
    /// `[reach] entries` — deterministic entry points for the
    /// `deterministic-core-reach` taint analysis (function paths; a
    /// trailing `*` prefix-matches the final segment, a type/module path
    /// matches all functions directly inside it).
    pub reach_entries: Vec<String>,
    /// `[hot-path] functions` — roots of the `hot-path-alloc` ban
    /// (same path syntax as `[reach] entries`).
    pub hot_path: Vec<String>,
    /// `[unsafe] sites` — the committed inventory of justified `unsafe`
    /// sites, as `path:line`.
    pub unsafe_sites: Vec<String>,
}

impl Config {
    /// Loads `path`; a missing file is an empty config (first run).
    pub fn load(path: &Path) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Parses the `lint.toml` subset. Unknown lines are ignored rather
    /// than rejected so the file can grow comments freely.
    pub fn parse(text: &str) -> Self {
        let mut cfg = Self::default();
        let mut section = String::new();
        let mut open_array: Option<ArrayKey> = None;
        for raw in text.lines() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(key) = open_array {
                cfg.array_mut(key).extend(quoted_strings(line));
                if line.contains(']') {
                    open_array = None;
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            match ArrayKey::of(&section, key) {
                Some(k) => {
                    cfg.array_mut(k).extend(quoted_strings(value));
                    if !value.contains(']') {
                        open_array = Some(k);
                    }
                }
                None => {
                    if section == "vendor" {
                        if let Some(v) = quoted_strings(value).into_iter().next() {
                            cfg.vendor.insert(key.to_string(), v);
                        }
                    }
                }
            }
        }
        cfg
    }

    /// The string-array field an [`ArrayKey`] names.
    fn array_mut(&mut self, key: ArrayKey) -> &mut Vec<String> {
        match key {
            ArrayKey::Baseline => &mut self.baseline,
            ArrayKey::Reach => &mut self.reach_entries,
            ArrayKey::HotPath => &mut self.hot_path,
            ArrayKey::Unsafe => &mut self.unsafe_sites,
        }
    }

    /// Renders the config back to `lint.toml` text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# icn-lint baseline. Entries are known violations (`rule:path:line`)\n\
             # that do not fail CI; new code must be clean. Burn entries down by\n\
             # fixing the code, or suppress a single site with\n\
             # `// lint:allow(<rule>): <reason>`. Regenerate with:\n\
             #   cargo run -p icn-lint -- --workspace --write-baseline\n\n",
        );
        out.push_str("[baseline]\nentries = [\n");
        let mut entries = self.baseline.clone();
        entries.sort();
        for e in &entries {
            let _ = writeln!(out, "    \"{e}\",");
        }
        out.push_str("]\n\n");
        out.push_str(
            "# Entry points of the deterministic-core-reach taint analysis:\n\
             # everything transitively callable from these must be free of\n\
             # nondeterminism sources. A trailing `*` prefix-matches the final\n\
             # path segment; a type/module path covers every fn directly in it.\n\
             [reach]\nentries = [\n",
        );
        for e in &self.reach_entries {
            let _ = writeln!(out, "    \"{e}\",");
        }
        out.push_str("]\n\n");
        out.push_str(
            "# Roots of the hot-path-alloc ban: these functions and their direct\n\
             # callees must not allocate (same path syntax as [reach]).\n\
             [hot-path]\nfunctions = [\n",
        );
        for e in &self.hot_path {
            let _ = writeln!(out, "    \"{e}\",");
        }
        out.push_str("]\n\n");
        out.push_str(
            "# Inventory of justified unsafe sites (`path:line`), maintained by\n\
             # --write-baseline. A new unsafe block shows up as a diff here, so\n\
             # review sees every one; a removed one goes stale and must be pruned.\n\
             [unsafe]\nsites = [\n",
        );
        let mut sites = self.unsafe_sites.clone();
        sites.sort();
        for e in &sites {
            let _ = writeln!(out, "    \"{e}\",");
        }
        out.push_str("]\n\n");
        out.push_str(
            "# Frozen digests of the vendored offline stand-ins. Editing anything\n\
             # under vendor/ requires bumping the hash here (--write-baseline),\n\
             # which makes vendor drift visible in review.\n[vendor]\n",
        );
        for (name, hash) in &self.vendor {
            let _ = writeln!(out, "{name} = \"{hash}\"");
        }
        out
    }

    /// Writes the rendered config to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.render())
    }
}

/// Which string-array config field a `(section, key)` pair fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArrayKey {
    Baseline,
    Reach,
    HotPath,
    Unsafe,
}

impl ArrayKey {
    fn of(section: &str, key: &str) -> Option<Self> {
        match (section, key) {
            ("baseline", "entries") => Some(Self::Baseline),
            ("reach", "entries") => Some(Self::Reach),
            ("hot-path", "functions") => Some(Self::HotPath),
            ("unsafe", "sites") => Some(Self::Unsafe),
            _ => None,
        }
    }
}

/// Removes a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// All `"..."` substrings of `line` (no escape support — keys never need it).
fn quoted_strings(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut cfg = Config::default();
        cfg.baseline
            .push("no-panic-in-lib:crates/core/src/sim.rs:241".into());
        cfg.baseline
            .push("deterministic-core:crates/cache/src/lru.rs:12".into());
        cfg.vendor.insert("rand".into(), "deadbeef01234567".into());
        let back = Config::parse(&cfg.render());
        let mut want = cfg.clone();
        want.baseline.sort();
        assert_eq!(back, want);
    }

    #[test]
    fn parses_single_line_array_and_comments() {
        let text = "[baseline]\nentries = [\"a:b:1\", \"c:d:2\"] # trailing\n[vendor]\nrand = \"ff\" # hash\n";
        let cfg = Config::parse(text);
        assert_eq!(cfg.baseline, vec!["a:b:1".to_string(), "c:d:2".to_string()]);
        assert_eq!(cfg.vendor["rand"], "ff");
    }

    #[test]
    fn missing_file_is_empty() {
        let cfg = Config::load(Path::new("/nonexistent/lint.toml")).expect("empty");
        assert!(cfg.baseline.is_empty() && cfg.vendor.is_empty());
    }

    #[test]
    fn reach_hotpath_and_unsafe_sections_round_trip() {
        let mut cfg = Config::default();
        cfg.reach_entries
            .push("icn_core::sim::Simulator::run".into());
        cfg.reach_entries.push("icn_core::sweep::run_cells*".into());
        cfg.hot_path.push("Simulator::process".into());
        cfg.unsafe_sites.push("crates/cache/src/lru.rs:40".into());
        cfg.baseline.push("a:b:1".into());
        let back = Config::parse(&cfg.render());
        assert_eq!(back, cfg);
    }

    #[test]
    fn multiline_arrays_parse_in_every_section() {
        let text = "[reach]\nentries = [\n  \"a::b\",\n  \"c::d*\",\n]\n\
                    [hot-path]\nfunctions = [\"X::y\"]\n\
                    [unsafe]\nsites = [\n]\n";
        let cfg = Config::parse(text);
        assert_eq!(cfg.reach_entries, vec!["a::b".to_string(), "c::d*".into()]);
        assert_eq!(cfg.hot_path, vec!["X::y".to_string()]);
        assert!(cfg.unsafe_sites.is_empty());
        assert!(cfg.baseline.is_empty());
    }

    #[test]
    fn hash_inside_quoted_entry_is_not_a_comment() {
        let text = "[baseline]\nentries = [\n  \"rule:path#x.rs:3\",\n]\n";
        let cfg = Config::parse(text);
        assert_eq!(cfg.baseline, vec!["rule:path#x.rs:3".to_string()]);
    }
}
