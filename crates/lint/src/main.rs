//! CLI for `icn-lint`. Exit codes: 0 clean (baselined violations allowed),
//! 1 new violations, 2 usage or I/O failure.

use icn_lint::{config::Config, engine};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
icn-lint — project-invariant auditor (panic paths, determinism, feature gates)

USAGE:
    icn-lint [--workspace] [--root <dir>] [--config <lint.toml>]
             [--json] [--write-baseline] [--budget-ms <n>]

OPTIONS:
    --workspace        Scan the enclosing cargo workspace (default; the flag
                       exists for symmetry with cargo subcommands)
    --root <dir>       Workspace root to scan (default: nearest ancestor of
                       the current directory containing lint.toml or a
                       [workspace] Cargo.toml)
    --config <path>    Baseline file (default: <root>/lint.toml)
    --json             Emit a machine-readable report on stdout
    --write-baseline   Rewrite the baseline to cover the current tree and
                       freeze current vendor hashes (plus the unsafe-site
                       inventory), then exit 0
    --budget-ms <n>    Fail (exit 1) when the scan takes longer than <n>
                       wall-clock milliseconds — the committed CI budget
                       that keeps the call-graph pass from going quadratic
    -h, --help         This text
";

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    budget_ms: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        json: false,
        write_baseline: false,
        budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {}
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?))
            }
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a number")?;
                args.budget_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--budget-ms: bad number `{v}`"))?,
                );
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Nearest ancestor (inclusive) holding `lint.toml` or a workspace-root
/// `Cargo.toml`.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_root(&cwd).ok_or("no workspace root found (try --root)")?
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let config =
        Config::load(&config_path).map_err(|e| format!("{}: {e}", config_path.display()))?;

    if args.write_baseline {
        let fresh = engine::regenerate_baseline(&root, &config).map_err(|e| e.to_string())?;
        fresh
            .save(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        eprintln!(
            "icn-lint: wrote {} ({} baseline entries, {} vendor hashes)",
            config_path.display(),
            fresh.baseline.len(),
            fresh.vendor.len()
        );
        return Ok(true);
    }

    let report = engine::scan(&root, &config).map_err(|e| e.to_string())?;
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if let Some(budget) = args.budget_ms {
        if report.elapsed_ms > budget {
            eprintln!(
                "icn-lint: scan took {:.0} ms, over the {budget:.0} ms budget \
                 (per-rule breakdown via --json timings_ms)",
                report.elapsed_ms
            );
            return Ok(false);
        }
    }
    Ok(report.ok())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("icn-lint: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
