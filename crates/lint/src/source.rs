//! Per-file semantic context on top of the lexer: suppression directives,
//! `#[cfg(test)]` / `#[test]` regions, and `feature = "obs"` gated regions.
//!
//! Region detection is lexical but literal-safe: attributes are located in
//! the masked view (so `#[cfg(test)]` inside a string can't open a region),
//! while the attribute's own text is read from the raw source (the
//! `"obs"` feature name is itself a string literal, which masking blanks).

use crate::lexer::{mask, Masked};

/// An inline `// lint:allow(<rule>): <reason>` directive.
pub struct AllowDirective {
    /// 1-indexed line the comment sits on.
    pub line: usize,
    /// Rule names listed inside the parentheses (comma separated).
    pub rules: Vec<String>,
    /// Whether a non-empty reason followed the colon.
    pub has_reason: bool,
}

/// Everything the rule engine needs to know about one file.
pub struct SourceFile {
    /// Masked view (comments/literals blanked).
    pub masked: Masked,
    /// Parsed suppression directives.
    pub allows: Vec<AllowDirective>,
    /// `in_test[line-1]` — line is inside a `#[cfg(test)]` module/item or a
    /// `#[test]` function.
    in_test: Vec<bool>,
    /// `obs_gated[line-1]` — line is inside an item gated on
    /// `#[cfg(feature = "obs")]` (or an `all(...)` containing it).
    obs_gated: Vec<bool>,
}

impl SourceFile {
    /// Lexes and analyses `src`.
    pub fn analyze(src: &str) -> Self {
        let masked = mask(src);
        let lines = masked.line_starts.len();
        let mut in_test = vec![false; lines];
        let mut obs_gated = vec![false; lines];
        mark_attribute_regions(src, &masked, &mut in_test, &mut obs_gated);
        let allows = parse_allow_directives(&masked);
        Self {
            masked,
            allows,
            in_test,
            obs_gated,
        }
    }

    /// True when `line` (1-indexed) is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// True when `line` (1-indexed) sits under an `obs` feature gate.
    pub fn is_obs_gated(&self, line: usize) -> bool {
        self.obs_gated.get(line - 1).copied().unwrap_or(false)
    }

    /// True when `rule` is suppressed at `line`: a directive naming it sits
    /// on the line itself or on the line directly above.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|d| (d.line == line || d.line + 1 == line) && d.rules.iter().any(|r| r == rule))
    }
}

fn parse_allow_directives(masked: &Masked) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (line, text) in &masked.line_comments {
        let Some(pos) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        // Only well-formed rule identifiers count: prose like
        // `lint:allow(...)` in documentation must not parse as a directive.
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| is_rule_name(r))
            .collect();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        if !rules.is_empty() {
            out.push(AllowDirective {
                line: *line,
                rules,
                has_reason,
            });
        }
    }
    out
}

/// Finds `#[...]` attributes in the masked view, classifies them, and marks
/// the lines of the item they cover.
/// `[a-z][a-z0-9-]*` — the shape of every rule identifier.
fn is_rule_name(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

fn mark_attribute_regions(src: &str, masked: &Masked, test: &mut [bool], obs: &mut [bool]) {
    let code = masked.code.as_bytes();
    let mut i = 0usize;
    while let Some(rel) = masked.code[i..].find("#[") {
        let start = i + rel;
        let Some(attr_end) = bracket_end(code, start + 1) else {
            break;
        };
        // Normalized views: token structure from the masked text, feature
        // names from the raw text.
        let norm_masked: String = masked.code[start..attr_end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let norm_raw: String = src[start..attr_end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let is_cfg = norm_masked.starts_with("#[cfg(");
        let is_test_attr = norm_masked == "#[test]"
            || norm_masked == "#[bench]"
            || (is_cfg && has_token(&norm_masked, "test"));
        let is_obs_attr = is_cfg
            && norm_raw.contains("feature=\"obs\"")
            && !norm_raw.contains("not(feature=\"obs\")");
        if is_test_attr || is_obs_attr {
            if let Some(item_end) = item_end(code, attr_end) {
                let first = masked.line_of(start);
                let last = masked.line_of(item_end.saturating_sub(1));
                for l in first..=last {
                    if is_test_attr {
                        test[l - 1] = true;
                    }
                    if is_obs_attr {
                        obs[l - 1] = true;
                    }
                }
            }
        }
        i = attr_end;
    }
}

/// True when `needle` appears in `hay` with identifier boundaries.
fn has_token(hay: &str, needle: &str) -> bool {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let after = at + needle.len();
        let post_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Offset one past the `]` matching the `[` at `open` (masked bytes).
fn bracket_end(code: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &c) in code.iter().enumerate().skip(open) {
        match c {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extent of the item following an attribute ending at `from`: skips
/// further attributes, then runs to the matching `}` of the item's block,
/// or to the terminating `;` for block-less items (`use`, `type`, ...).
fn item_end(code: &[u8], mut from: usize) -> Option<usize> {
    loop {
        while from < code.len() && (code[from] as char).is_whitespace() {
            from += 1;
        }
        if code.get(from) == Some(&b'#') && code.get(from + 1) == Some(&b'[') {
            from = bracket_end(code, from + 1)?;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    for (j, &c) in code.iter().enumerate().skip(from) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            b';' if depth == 0 => return Some(j + 1),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let src =
            "fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        let f = SourceFile::analyze(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
    }

    #[test]
    fn test_attr_function_is_test_region() {
        let src = "#[test]\nfn t() {\n    a.unwrap();\n}\nfn real() {}\n";
        let f = SourceFile::analyze(src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"obs\"))]\nmod t {\n    fn x() {}\n}\n";
        let f = SourceFile::analyze(src);
        assert!(f.is_test_line(3));
        assert!(f.is_obs_gated(3));
    }

    #[test]
    fn feature_name_containing_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test-utils\")]\nmod m {\n    fn x() {}\n}\n";
        let f = SourceFile::analyze(src);
        assert!(!f.is_test_line(3), "string content must not leak tokens");
    }

    #[test]
    fn obs_gate_covers_blockless_items() {
        let src = "#[cfg(feature = \"obs\")]\nuse icn_obs::Registry;\nfn ungated() {}\n";
        let f = SourceFile::analyze(src);
        assert!(f.is_obs_gated(2));
        assert!(!f.is_obs_gated(3));
    }

    #[test]
    fn not_obs_gate_does_not_count() {
        let src = "#[cfg(not(feature = \"obs\"))]\nmod shell {\n    fn x() {}\n}\n";
        let f = SourceFile::analyze(src);
        assert!(!f.is_obs_gated(3));
    }

    #[test]
    fn allow_directive_parses_and_applies() {
        let src = "// lint:allow(no-panic-in-lib): invariant checked above\nx.unwrap();\ny.unwrap(); // lint:allow(no-panic-in-lib, deterministic-core): both\n";
        let f = SourceFile::analyze(src);
        assert!(f.is_allowed("no-panic-in-lib", 2));
        assert!(f.is_allowed("no-panic-in-lib", 3));
        assert!(f.is_allowed("deterministic-core", 3));
        assert!(!f.is_allowed("deterministic-core", 2));
        assert!(f.allows.iter().all(|d| d.has_reason));
    }

    #[test]
    fn reasonless_allow_is_flagged() {
        let src = "x.unwrap(); // lint:allow(no-panic-in-lib)\n";
        let f = SourceFile::analyze(src);
        assert!(!f.allows[0].has_reason);
    }

    #[test]
    fn prose_mention_of_the_directive_is_not_a_directive() {
        let src = "/// Also usable in `lint:allow(...)` and baseline keys.\nfn f() {}\n";
        let f = SourceFile::analyze(src);
        assert!(f.allows.is_empty());
    }

    #[test]
    fn attribute_inside_string_does_not_open_region() {
        let src = "let s = \"#[cfg(test)]\";\nfn real() { x.unwrap(); }\n";
        let f = SourceFile::analyze(src);
        assert!(!f.is_test_line(2));
    }
}
