//! `deterministic-core-reach`: interprocedural taint reachability.
//!
//! The per-file `deterministic-core` rule bans nondeterminism *sources*
//! (wall clocks, ambient entropy, default-`RandomState` hashing, ...) in
//! `crates/{core,cache}` — but a source hidden in a helper in
//! `crates/topology` or `crates/workload` escapes it, even when the
//! deterministic entry points call that helper on every request. This rule
//! closes the gap: starting from the entry points listed under
//! `[reach] entries` in `lint.toml`, it walks the conservative call graph
//! and reports any reachable function whose body contains a source, with
//! the full call chain in the diagnostic.
//!
//! Conservatism rules (what keeps false positives tolerable):
//! - the universe is the library code of `crates/{core,cache,topology,
//!   workload}` minus `instrument.rs` (the sanctioned clock shim), plus
//!   the single seeded-schedule file of `crates/idicn` (`chaos.rs`) —
//!   obs and the rest of idICN (sockets, deadlines, retry sleeps) are
//!   out of scope by construction;
//! - call edges on `#[cfg(feature = "obs")]`-gated or test-only lines do
//!   not exist (the default build never takes them);
//! - sources on gated/test lines are exempt, and a site may be justified
//!   with a `deterministic-core-reach` allow directive — or with a
//!   per-file `deterministic-core` allow already covering it, so one
//!   justification serves both rules;
//! - thread/channel primitives are sanctioned inside `sweep.rs` (the one
//!   blessed parallelism site, policed separately by the per-file rule).

use crate::callgraph::CallGraph;
use crate::rules::{
    token_offsets, RuleOutcome, Suppressed, Violation, DETERMINISTIC, INSTRUMENT_FILE, REACH,
    SWEEP_FILE,
};
use crate::symtab::{FileUnit, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates whose library code forms the reachability universe. `idicn`
/// participates through exactly one file — see [`IDICN_UNIVERSE_FILE`].
pub const UNIVERSE_CRATES: &[&str] = &["core", "cache", "topology", "workload", "idicn"];

/// The one `idicn` file in the universe: the seeded chaos schedule
/// (`ChaosPolicy`), which must stay a pure function of `(seed, index)`
/// like the simulator's `FaultSchedule`. The rest of the crate is real
/// networking — sockets, deadlines, retry sleeps — and admitting it
/// would flood the over-approximate call graph with edges from common
/// method names (`run`, `from`) into legitimately nondeterministic
/// code.
pub const IDICN_UNIVERSE_FILE: &str = "chaos.rs";

struct SourcePattern {
    text: &'static str,
    call: bool,
    why: &'static str,
    /// Sanctioned in `sweep.rs` (the blessed `std::thread::scope` site).
    sweep_ok: bool,
}

const SOURCES: &[SourcePattern] = &[
    SourcePattern {
        text: "Instant::now",
        call: false,
        why: "wall clock on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "SystemTime",
        call: false,
        why: "wall clock on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "thread_rng",
        call: false,
        why: "unseeded entropy on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "from_entropy",
        call: false,
        why: "unseeded entropy on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "std::env",
        call: false,
        why: "ambient environment read on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "HashMap",
        call: false,
        why: "default-RandomState iteration order on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "HashSet",
        call: false,
        why: "default-RandomState iteration order on the deterministic path",
        sweep_ok: false,
    },
    SourcePattern {
        text: "std::thread",
        call: false,
        why: "thread scheduling on the deterministic path (outside sweep.rs)",
        sweep_ok: true,
    },
    SourcePattern {
        text: "mpsc",
        call: false,
        why: "completion-order channel on the deterministic path (outside sweep.rs)",
        sweep_ok: true,
    },
    SourcePattern {
        text: "Mutex",
        call: false,
        why: "lock-order-dependent state on the deterministic path (outside sweep.rs)",
        sweep_ok: true,
    },
    SourcePattern {
        text: "RwLock",
        call: false,
        why: "lock-order-dependent state on the deterministic path (outside sweep.rs)",
        sweep_ok: true,
    },
    SourcePattern {
        text: "Condvar",
        call: false,
        why: "wakeup-order-dependent state on the deterministic path (outside sweep.rs)",
        sweep_ok: true,
    },
];

/// True when `def` belongs to the reachability universe.
pub fn in_universe(def_unit: &FileUnit, is_test: bool) -> bool {
    !is_test
        && !def_unit.non_lib
        && def_unit
            .crate_dir
            .as_deref()
            .is_some_and(|c| UNIVERSE_CRATES.contains(&c))
        && def_unit.file_name() != INSTRUMENT_FILE
        && (def_unit.crate_dir.as_deref() != Some("idicn")
            || def_unit.file_name() == IDICN_UNIVERSE_FILE)
}

/// Runs the rule. `entries` come from `[reach] entries` in `lint.toml`;
/// with no entries the rule is inert.
pub fn check(
    units: &[FileUnit],
    tab: &SymbolTable,
    graph: &CallGraph,
    entries: &[String],
) -> RuleOutcome {
    let mut out = RuleOutcome::default();
    if entries.is_empty() {
        return out;
    }

    let universe: Vec<bool> = tab
        .fns
        .iter()
        .map(|f| in_universe(&units[f.unit], f.is_test))
        .collect();

    // Source sites per universe function, found once up front.
    let sources: BTreeMap<usize, Vec<SourceSite>> = tab
        .fns
        .iter()
        .enumerate()
        .filter(|(id, _)| universe[*id])
        .filter_map(|(id, f)| {
            let sites = fn_sources(&units[f.unit], f);
            (!sites.is_empty()).then_some((id, sites))
        })
        .collect();

    let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
    for entry in entries {
        let roots: Vec<usize> = tab
            .resolve_entry(entry)
            .into_iter()
            .filter(|&id| universe[id])
            .collect();
        if roots.is_empty() {
            out.violations.push(Violation {
                rule: REACH,
                path: "lint.toml".to_string(),
                line: 0,
                message: format!(
                    "[reach] entry `{entry}` resolves to no function in the \
                     universe — renamed? fix the entry"
                ),
            });
            continue;
        }
        // BFS with parent pointers so the diagnostic can print the chain.
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in &roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            if let Some(sites) = sources.get(&f) {
                let chain = chain_of(tab, &parent, f);
                for s in sites {
                    let unit = &units[tab.fns[f].unit];
                    let key = (unit.rel.clone(), s.line);
                    if reported.contains(&key) {
                        continue;
                    }
                    reported.insert(key);
                    match s.allowed_as {
                        Some(rule) => out.suppressed.push(Suppressed {
                            path: unit.rel.clone(),
                            line: s.line,
                            rule,
                        }),
                        None => out.violations.push(Violation {
                            rule: REACH,
                            path: unit.rel.clone(),
                            line: s.line,
                            message: format!(
                                "`{}` ({}) is reachable from entry `{}`: {}",
                                s.text, s.why, entry, chain
                            ),
                        }),
                    }
                }
            }
            for e in &graph.edges[f] {
                if universe[e.callee] && !parent.contains_key(&e.callee) {
                    parent.insert(e.callee, Some(f));
                    queue.push_back(e.callee);
                }
            }
        }
    }
    out
}

struct SourceSite {
    text: &'static str,
    why: &'static str,
    line: usize,
    /// When a `lint:allow` covers the site, the rule name it was credited
    /// under (`deterministic-core-reach` preferred, the per-file
    /// `deterministic-core` accepted).
    allowed_as: Option<&'static str>,
}

/// Nondeterminism sources in one function's body, minus gated/test lines.
fn fn_sources(unit: &FileUnit, def: &crate::symtab::FnDef) -> Vec<SourceSite> {
    let Some((start, end)) = def.body else {
        return Vec::new();
    };
    let body = &unit.source.masked.code[start..end];
    let in_sweep = unit.file_name() == SWEEP_FILE;
    let mut out = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for p in SOURCES {
        if p.sweep_ok && in_sweep {
            continue;
        }
        for off in token_offsets(body, p.text, p.call) {
            let line = unit.source.masked.line_of(start + off);
            if unit.source.is_test_line(line) || unit.source.is_obs_gated(line) {
                continue;
            }
            if !seen.insert(line) {
                continue;
            }
            let allowed_as = if unit.source.is_allowed(REACH, line) {
                Some(REACH)
            } else if unit.source.is_allowed(DETERMINISTIC, line) {
                Some(DETERMINISTIC)
            } else {
                None
            };
            out.push(SourceSite {
                text: p.text,
                why: p.why,
                line,
                allowed_as,
            });
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

/// `entry → ... → sink` rendered with short display names.
fn chain_of(tab: &SymbolTable, parent: &BTreeMap<usize, Option<usize>>, mut f: usize) -> String {
    let mut rev = vec![display_name(&tab.fns[f].path)];
    while let Some(Some(p)) = parent.get(&f) {
        rev.push(display_name(&tab.fns[*p].path));
        f = *p;
    }
    rev.reverse();
    rev.join(" -> ")
}

/// Last two path segments (`Simulator::run`), or the bare name for free
/// fns directly under the crate root.
fn display_name(path: &str) -> String {
    let parts: Vec<&str> = path.split("::").collect();
    if parts.len() >= 2 {
        parts[parts.len() - 2..].join("::")
    } else {
        path.to_string()
    }
}
