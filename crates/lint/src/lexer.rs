//! A minimal Rust lexer that separates *code* from *non-code*.
//!
//! The rule engine never inspects raw source: it matches patterns against a
//! [`Masked`] view in which every byte of a comment, string literal, raw
//! string, byte string, or char literal is replaced with a space (newlines
//! are preserved), so `"unwrap()"` inside a string or `// unwrap()` inside
//! a comment can never fire a rule. Byte offsets are identical between the
//! raw and masked views, which keeps `file:line` diagnostics exact even for
//! multi-byte UTF-8 source.
//!
//! Line comments are additionally collected verbatim (with their line
//! numbers) so the engine can recognise `// lint:allow(<rule>): <reason>`
//! suppression directives.

/// The result of masking one source file.
pub struct Masked {
    /// Source with all comment/literal bytes blanked to spaces. Same byte
    /// length as the input; newlines preserved.
    pub code: String,
    /// `(line, text)` for every `//` comment, 1-indexed, text excluding the
    /// leading slashes.
    pub line_comments: Vec<(usize, String)>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
}

impl Masked {
    /// 1-indexed line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // insertion point is one past the containing line
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks `src`, classifying comments and literals. The lexer understands
/// nested block comments, escapes in string/char literals, raw (and byte,
/// and raw-byte) strings with arbitrary `#` counts, byte chars, and leaves
/// lifetimes (`'a`) and raw identifiers (`r#match`) untouched as code.
pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = vec![0u8; b.len()];
    out.copy_from_slice(b);
    let mut line_comments = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize, starts: &[usize]| -> usize {
        match starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };

    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let prev_ident = i > 0 && is_ident(b[i - 1]);
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: capture text, blank to end of line.
                let start = i;
                let mut j = i;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = src[start + 2..j].to_string();
                line_comments.push((line_of(start, &line_starts), text));
                blank(&mut out, start, j);
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, start, j);
                i = j;
            }
            b'"' => {
                let j = skip_string(b, i);
                blank(&mut out, i, j);
                i = j;
            }
            b'r' | b'b' if !prev_ident => {
                // Possible r"…", r#"…"#, b"…", br"…", b'x', br#"…"#.
                let mut k = i + 1;
                if c == b'b' && b.get(k) == Some(&b'r') {
                    k += 1;
                }
                let mut hashes = 0usize;
                while b.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                let raw = c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r'));
                if b.get(k) == Some(&b'"') && (raw || hashes == 0) {
                    let j = if raw {
                        skip_raw_string(b, k, hashes)
                    } else {
                        skip_string(b, k)
                    };
                    blank(&mut out, i, j);
                    i = j;
                } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
                    let j = skip_char(b, i + 1);
                    blank(&mut out, i, j);
                    i = j;
                } else {
                    i += 1; // raw identifier (r#match) or plain ident char
                }
            }
            b'\'' if !prev_ident => {
                if let Some(j) = char_literal_end(src, b, i) {
                    blank(&mut out, i, j);
                    i = j;
                } else {
                    i += 1; // lifetime or label
                }
            }
            _ => i += 1,
        }
    }

    Masked {
        // Masking only ever writes ASCII spaces over existing bytes, and
        // multi-byte chars are only rewritten whole (inside literals), so
        // the buffer stays valid UTF-8.
        code: String::from_utf8_lossy(&out).into_owned(),
        line_comments,
        line_starts,
    }
}

/// Byte offset one past the closing quote of a string starting at `open`.
fn skip_string(b: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Byte offset one past the end of `r##"…"##` whose quote is at `quote`.
fn skip_raw_string(b: &[u8], quote: usize, hashes: usize) -> usize {
    let mut j = quote + 1;
    while j < b.len() {
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// Byte offset one past the closing quote of a char literal at `open`
/// (which must hold `'`). Assumes the caller verified it is a literal.
fn skip_char(b: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Distinguishes a char literal from a lifetime at `'` (offset `open`).
/// Returns the end offset for a literal, `None` for a lifetime/label.
fn char_literal_end(src: &str, b: &[u8], open: usize) -> Option<usize> {
    match b.get(open + 1) {
        Some(b'\\') => Some(skip_char(b, open)),
        Some(_) => {
            // One char (possibly multi-byte) followed by a closing quote
            // makes a literal; anything else is a lifetime.
            let rest = &src[open + 1..];
            let ch = rest.chars().next()?;
            let after = open + 1 + ch.len_utf8();
            (b.get(after) == Some(&b'\'')).then_some(after + 1)
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code
    }

    #[test]
    fn line_comment_is_blanked_and_captured() {
        let m = mask("let x = 1; // unwrap() here\nlet y = 2;\n");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let y"));
        assert_eq!(m.line_comments.len(), 1);
        assert_eq!(m.line_comments[0].0, 1);
        assert!(m.line_comments[0].1.contains("unwrap() here"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unwrap() */ still outer */ b.unwrap()";
        let c = code_of(src);
        assert!(c.starts_with('a'));
        assert!(c.ends_with("b.unwrap()"));
        assert_eq!(c.matches("unwrap").count(), 1, "only the code one");
        assert_eq!(c.len(), src.len(), "offsets preserved");
    }

    #[test]
    fn raw_string_containing_unwrap() {
        let src = r####"let s = r#"x.unwrap() "quoted" "#; s.len()"####;
        let c = code_of(src);
        assert!(!c.contains("unwrap"));
        assert!(c.contains("s.len()"));
    }

    #[test]
    fn line_comment_marker_inside_string_literal() {
        let src = "let url = \"http://example//path\"; x.unwrap()";
        let c = code_of(src);
        assert!(!c.contains("http"));
        assert!(c.contains("x.unwrap()"), "code after the string survives");
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\"'; y.unwrap()";
        let c = code_of(src);
        assert!(c.contains("y.unwrap()"));
        assert!(!c.contains('"'));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let r = '\\'; z.expect(msg)";
        let c = code_of(src);
        assert!(c.contains("z.expect(msg)"));
    }

    #[test]
    fn lifetimes_are_code_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // tail";
        let c = code_of(src);
        assert!(c.contains("fn f<'a>(x: &'a str) -> &'a str { x }"));
        assert!(!c.contains("tail"));
    }

    #[test]
    fn multibyte_utf8_in_strings_and_chars() {
        let src = "let s = \"héllo — unwrap()\"; let c = 'é'; done.unwrap()";
        let m = mask(src);
        assert_eq!(m.code.matches("unwrap").count(), 1);
        assert!(m.code.contains("done.unwrap()"));
        // Offsets line up: the surviving unwrap is at the same byte offset.
        let off = m.code.find("done").expect("code survives");
        assert_eq!(&src[off..off + 4], "done");
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"panic!\"; let b2 = b'x'; let c = br#\"expect(\"#; go()";
        let c = code_of(src);
        assert!(!c.contains("panic"));
        assert!(!c.contains("expect"));
        assert!(c.contains("go()"));
    }

    #[test]
    fn raw_identifiers_are_untouched() {
        let src = "let r#match = 1; r#match.unwrap()";
        let c = code_of(src);
        assert!(c.contains("r#match.unwrap()"));
    }

    #[test]
    fn multiline_string_preserves_line_numbers() {
        let src = "let s = \"line one\nline two unwrap()\";\nx.unwrap()\n";
        let m = mask(src);
        assert_eq!(m.code.matches("unwrap").count(), 1);
        let off = m.code.find("x.unwrap").expect("present");
        assert_eq!(m.line_of(off), 3);
    }

    #[test]
    fn line_of_is_one_indexed() {
        let m = mask("a\nb\nc\n");
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(2), 2);
        assert_eq!(m.line_of(4), 3);
    }
}
