//! `hot-path-alloc`: allocation constructs banned in the configured
//! hot-path functions and their direct callees.
//!
//! PR 5 flattened the simulator hot path to be allocation-free
//! (`O(1)` path costs, enum-dispatched caches, index-buffer candidate
//! selection); this rule keeps it that way by construction. The functions
//! under `[hot-path] functions` in `lint.toml` are the roots; the ban
//! covers each root's body plus its direct callees in the deterministic
//! universe (one hop — transitive closure would swallow the cold
//! constructors the hot path legitimately reaches through setup calls
//! that run once per cell, not once per request).
//!
//! A configured path that resolves to no function is itself a violation:
//! a rename must not silently shrink the protected set.

use crate::callgraph::CallGraph;
use crate::reach::in_universe;
use crate::rules::{token_offsets, RuleOutcome, Suppressed, Violation, HOT_PATH_ALLOC};
use crate::symtab::{FileUnit, SymbolTable};
use std::collections::BTreeMap;

struct AllocPattern {
    text: &'static str,
    call: bool,
}

const ALLOC_PATTERNS: &[AllocPattern] = &[
    AllocPattern {
        text: "Vec::new",
        call: false,
    },
    AllocPattern {
        text: "Box::new",
        call: false,
    },
    AllocPattern {
        text: "String::new",
        call: false,
    },
    AllocPattern {
        text: "vec!",
        call: false,
    },
    AllocPattern {
        text: "format!",
        call: false,
    },
    AllocPattern {
        text: "collect",
        call: true,
    },
    AllocPattern {
        text: "to_string",
        call: true,
    },
    AllocPattern {
        text: "to_vec",
        call: true,
    },
    AllocPattern {
        text: "to_owned",
        call: true,
    },
    AllocPattern {
        text: "with_capacity",
        call: false,
    },
];

/// Runs the rule. `functions` come from `[hot-path] functions` in
/// `lint.toml`; with no entries the rule is inert.
pub fn check(
    units: &[FileUnit],
    tab: &SymbolTable,
    graph: &CallGraph,
    functions: &[String],
) -> RuleOutcome {
    let mut out = RuleOutcome::default();
    if functions.is_empty() {
        return out;
    }

    // fn id → the configured root that pulled it into the protected set
    // (first in config order wins, for stable messages).
    let mut protected: BTreeMap<usize, String> = BTreeMap::new();
    for entry in functions {
        let roots: Vec<usize> = tab
            .resolve_entry(entry)
            .into_iter()
            .filter(|&id| in_universe(&units[tab.fns[id].unit], tab.fns[id].is_test))
            .collect();
        if roots.is_empty() {
            out.violations.push(Violation {
                rule: HOT_PATH_ALLOC,
                path: "lint.toml".to_string(),
                line: 0,
                message: format!(
                    "[hot-path] function `{entry}` resolves to nothing — \
                     renamed? fix the entry"
                ),
            });
            continue;
        }
        for &r in &roots {
            protected.entry(r).or_insert_with(|| entry.clone());
            for e in &graph.edges[r] {
                let callee = &tab.fns[e.callee];
                if in_universe(&units[callee.unit], callee.is_test) {
                    protected
                        .entry(e.callee)
                        .or_insert_with(|| format!("{entry} (direct callee)"));
                }
            }
        }
    }

    for (&id, root) in &protected {
        let def = &tab.fns[id];
        let Some((start, end)) = def.body else {
            continue;
        };
        let unit = &units[def.unit];
        let body = &unit.source.masked.code[start..end];
        for p in ALLOC_PATTERNS {
            for off in token_offsets(body, p.text, p.call) {
                let line = unit.source.masked.line_of(start + off);
                if unit.source.is_test_line(line) || unit.source.is_obs_gated(line) {
                    continue;
                }
                if unit.source.is_allowed(HOT_PATH_ALLOC, line) {
                    out.suppressed.push(Suppressed {
                        path: unit.rel.clone(),
                        line,
                        rule: HOT_PATH_ALLOC,
                    });
                    continue;
                }
                out.violations.push(Violation {
                    rule: HOT_PATH_ALLOC,
                    path: unit.rel.clone(),
                    line,
                    message: format!(
                        "`{}` allocates in hot-path fn `{}` (protected via `{}`)",
                        p.text,
                        display(&def.path),
                        root
                    ),
                });
            }
        }
    }
    out.violations
        .sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out
}

fn display(path: &str) -> String {
    let parts: Vec<&str> = path.split("::").collect();
    if parts.len() >= 2 {
        parts[parts.len() - 2..].join("::")
    } else {
        path.to_string()
    }
}
