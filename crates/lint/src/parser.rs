//! Item-level parser on top of the masked lexer view.
//!
//! The per-file pattern rules need no structure, but the interprocedural
//! rules (`deterministic-core-reach`, `hot-path-alloc`) need to know *which
//! function* a token sits in and *which functions it calls*. This module
//! recovers exactly that much structure — `fn` items (free and inside
//! `impl`/`trait` blocks, with byte-exact body spans), `use` trees, and
//! inline `mod` nesting — from the [`crate::lexer::Masked`] view, so item
//! boundaries can never be faked from inside a string or comment.
//!
//! It is deliberately *not* a full Rust parser: anything it does not
//! understand it skips, and the downstream analyses are written so that a
//! skipped item can only lose call-graph edges inside code the per-file
//! rules already police. Offsets always refer to the original source
//! bytes (masking is length-preserving), so diagnostics stay exact.

use crate::lexer::Masked;

/// One lexical token of masked code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Token classification — only as fine-grained as item parsing needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; `raw` marks `r#ident` (never a keyword).
    Ident {
        /// True for raw identifiers (`r#fn` is a name, not a keyword).
        raw: bool,
    },
    /// A lifetime or loop label (`'a`).
    Lifetime,
    /// A numeric literal (char/str literals are blanked by the lexer).
    Number,
    /// Any single punctuation byte.
    Punct(u8),
}

impl Token {
    /// The token's text within `code`.
    pub fn text<'a>(&self, code: &'a str) -> &'a str {
        &code[self.start..self.end]
    }

    /// Identifier name with any `r#` prefix stripped; `None` for
    /// non-identifier tokens.
    pub fn ident_name<'a>(&self, code: &'a str) -> Option<&'a str> {
        match self.kind {
            TokKind::Ident { raw } => {
                let t = self.text(code);
                Some(if raw { &t[2..] } else { t })
            }
            _ => None,
        }
    }

    /// True for a non-raw identifier equal to `kw` (i.e. a keyword use —
    /// `r#fn` is an ordinary name and never matches).
    pub fn is_kw(&self, code: &str, kw: &str) -> bool {
        self.kind == TokKind::Ident { raw: false } && self.text(code) == kw
    }

    /// True for the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes masked code (strings/comments already blanked to spaces).
pub fn tokenize(code: &str) -> Vec<Token> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'r'
            && b.get(i + 1) == Some(&b'#')
            && b.get(i + 2).is_some_and(|&n| is_ident_start(n))
        {
            // Raw identifier: r#fn, r#match — a name, never a keyword.
            let start = i;
            i += 2;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Ident { raw: true },
                start,
                end: i,
            });
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Ident { raw: false },
                start,
                end: i,
            });
        } else if c.is_ascii_digit() {
            // Number literal (incl. float/suffix forms); `0..n` must leave
            // the range dots alone, so a dot is only eaten when a digit
            // follows it.
            let start = i;
            while i < b.len() && (is_ident_continue(b[i]) || b[i] == b'.') {
                if b[i] == b'.' && !b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                    break;
                }
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Number,
                start,
                end: i,
            });
        } else if c == b'\'' && b.get(i + 1).is_some_and(|&n| is_ident_start(n)) {
            // Lifetime/label (char literals were blanked by the lexer).
            let start = i;
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.push(Token {
                kind: TokKind::Lifetime,
                start,
                end: i,
            });
        } else {
            out.push(Token {
                kind: TokKind::Punct(c),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    out
}

/// One `fn` item (free function, inherent/trait method, or trait default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Name with any `r#` stripped.
    pub name: String,
    /// Enclosing inline-module path within the file (outermost first).
    pub modules: Vec<String>,
    /// Self type for methods (`impl Foo` / `trait Foo`), `None` for free fns.
    pub type_name: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword.
    pub offset: usize,
    /// Byte span `[start, end)` of the `{ ... }` body; `None` for
    /// body-less declarations (trait required methods, extern decls).
    pub body: Option<(usize, usize)>,
}

/// One name bound by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// The name visible in this file (`as` rename wins; `*` for globs).
    pub alias: String,
    /// Full path segments as written (`crate`/`super`/`self` preserved).
    pub path: Vec<String>,
}

/// Everything item-level parsing extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use`-bound name.
    pub imports: Vec<Import>,
}

/// Parses the masked view of one file into items.
pub fn parse(masked: &Masked) -> ParsedFile {
    let toks = tokenize(&masked.code);
    let mut p = Parser {
        code: &masked.code,
        masked,
        toks,
        i: 0,
        out: ParsedFile::default(),
    };
    let mut mods = Vec::new();
    p.parse_scope(&mut mods, None, false);
    p.out
}

struct Parser<'a> {
    code: &'a str,
    masked: &'a Masked,
    toks: Vec<Token>,
    i: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<Token> {
        self.toks.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.peek();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, b: u8) -> bool {
        self.peek().is_some_and(|t| t.is_punct(b))
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(self.code, kw))
    }

    /// Skips a balanced `open`/`close` group whose opener is the current
    /// token; stops at end of input if unbalanced.
    fn skip_group(&mut self, open: u8, close: u8) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips a balanced generic-argument group starting at `<`. `->` inside
    /// (`Fn() -> T` bounds) does not close a level.
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        let mut prev_dash = false;
        while let Some(t) = self.bump() {
            if t.is_punct(b'<') {
                depth += 1;
            } else if t.is_punct(b'>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
            prev_dash = t.is_punct(b'-');
        }
    }

    /// Skips tokens until a `;` at zero `()`/`[]`/`{}` depth (consuming
    /// it) — the shape of `const`/`static`/`type`/`struct X(..);` items.
    fn skip_to_semi(&mut self) {
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut brace = 0isize;
        while let Some(t) = self.bump() {
            match t.kind {
                TokKind::Punct(b'(') => paren += 1,
                TokKind::Punct(b')') => paren -= 1,
                TokKind::Punct(b'[') => bracket += 1,
                TokKind::Punct(b']') => bracket -= 1,
                TokKind::Punct(b'{') => brace += 1,
                TokKind::Punct(b'}') => {
                    brace -= 1;
                    // `struct X { .. }` has no trailing semicolon: a brace
                    // group closing at depth zero ends the item too.
                    if brace == 0 && paren == 0 && bracket == 0 {
                        return;
                    }
                }
                TokKind::Punct(b';') if paren == 0 && bracket == 0 && brace == 0 => return,
                _ => {}
            }
        }
    }

    /// Skips an attribute (`#[...]` / `#![...]`) whose `#` is current.
    fn skip_attribute(&mut self) {
        self.bump(); // '#'
        if self.at_punct(b'!') {
            self.bump();
        }
        if self.at_punct(b'[') {
            self.skip_group(b'[', b']');
        }
    }

    /// Parses items until the matching `}` of the enclosing scope (consumed
    /// when `consume_close`), or end of input at top level.
    fn parse_scope(&mut self, mods: &mut Vec<String>, ty: Option<&str>, consume_close: bool) {
        while let Some(t) = self.peek() {
            if t.is_punct(b'}') {
                if consume_close {
                    self.bump();
                }
                return;
            }
            if t.is_punct(b'#') {
                self.skip_attribute();
                continue;
            }
            if t.kind == (TokKind::Ident { raw: false }) {
                match t.text(self.code) {
                    "pub" => {
                        self.bump();
                        if self.at_punct(b'(') {
                            self.skip_group(b'(', b')');
                        }
                        continue;
                    }
                    // Modifiers that may precede `fn`/`impl`/`trait`.
                    "unsafe" | "async" | "default" => {
                        self.bump();
                        continue;
                    }
                    "const" | "static" => {
                        self.bump();
                        if self.at_kw("fn") {
                            continue; // `const fn` — the fn arm handles it
                        }
                        self.skip_to_semi();
                        continue;
                    }
                    "extern" => {
                        self.bump();
                        // `extern "C" fn` (ABI string is blanked) or an
                        // `extern { ... }` foreign block, skipped whole.
                        if self.at_punct(b'{') {
                            self.skip_group(b'{', b'}');
                        }
                        continue;
                    }
                    "fn" => {
                        self.parse_fn(mods, ty);
                        continue;
                    }
                    "impl" => {
                        self.parse_impl(mods);
                        continue;
                    }
                    "trait" => {
                        self.bump();
                        let name = self
                            .bump()
                            .and_then(|t| t.ident_name(self.code).map(str::to_string));
                        self.skip_to_brace_open();
                        if self.at_punct(b'{') {
                            self.bump();
                            self.parse_scope(mods, name.as_deref(), true);
                        }
                        continue;
                    }
                    "mod" => {
                        self.bump();
                        let name = self
                            .bump()
                            .and_then(|t| t.ident_name(self.code).map(str::to_string));
                        if self.at_punct(b'{') {
                            self.bump();
                            if let Some(n) = name {
                                mods.push(n);
                                self.parse_scope(mods, None, true);
                                mods.pop();
                            } else {
                                self.parse_scope(mods, None, true);
                            }
                        } else if self.at_punct(b';') {
                            self.bump();
                        }
                        continue;
                    }
                    "use" => {
                        self.bump();
                        self.parse_use();
                        continue;
                    }
                    "struct" | "enum" | "union" | "type" => {
                        self.bump();
                        self.skip_to_semi();
                        continue;
                    }
                    "macro_rules" => {
                        self.bump(); // macro_rules
                        self.bump(); // !
                        self.bump(); // name
                        match self.peek().map(|t| t.kind) {
                            Some(TokKind::Punct(b'{')) => self.skip_group(b'{', b'}'),
                            Some(TokKind::Punct(b'(')) => {
                                self.skip_group(b'(', b')');
                                self.bump(); // ';'
                            }
                            _ => {}
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            // Unknown token at item level: skip it, descending into no
            // structure (balanced groups are skipped whole so a stray
            // brace cannot desynchronize scope tracking).
            match t.kind {
                TokKind::Punct(b'{') => self.skip_group(b'{', b'}'),
                TokKind::Punct(b'(') => self.skip_group(b'(', b')'),
                TokKind::Punct(b'[') => self.skip_group(b'[', b']'),
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips to (not past) the next `{` at zero angle/paren depth.
    fn skip_to_brace_open(&mut self) {
        loop {
            match self.peek().map(|t| t.kind) {
                None | Some(TokKind::Punct(b'{')) | Some(TokKind::Punct(b';')) => return,
                Some(TokKind::Punct(b'<')) => self.skip_angles(),
                Some(TokKind::Punct(b'(')) => self.skip_group(b'(', b')'),
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_fn(&mut self, mods: &[String], ty: Option<&str>) {
        let fn_tok = match self.bump() {
            Some(t) => t,
            None => return,
        };
        let Some(name) = self
            .bump()
            .and_then(|t| t.ident_name(self.code).map(str::to_string))
        else {
            return;
        };
        // Generic parameters: `fn f<F: Fn() -> u32, const N: usize>`.
        if self.at_punct(b'<') {
            self.skip_angles();
        }
        // Argument list (nested generics, `impl Trait`, closures in
        // defaults — all balanced parens).
        if self.at_punct(b'(') {
            self.skip_group(b'(', b')');
        }
        // Return type / where clause, up to the body `{` or a `;`. A `;`
        // inside `[u8; 4]` or parenthesized bounds must not terminate.
        let mut body = None;
        loop {
            match self.peek().map(|t| t.kind) {
                None => break,
                Some(TokKind::Punct(b';')) => {
                    self.bump();
                    break;
                }
                Some(TokKind::Punct(b'{')) => {
                    let open = self.peek().map(|t| t.start).unwrap_or(0);
                    self.skip_group(b'{', b'}');
                    let close = self.toks.get(self.i - 1).map(|t| t.end).unwrap_or(open);
                    body = Some((open, close));
                    break;
                }
                Some(TokKind::Punct(b'<')) => self.skip_angles(),
                Some(TokKind::Punct(b'(')) => self.skip_group(b'(', b')'),
                Some(TokKind::Punct(b'[')) => self.skip_group(b'[', b']'),
                _ => {
                    self.bump();
                }
            }
        }
        self.out.fns.push(FnItem {
            name,
            modules: mods.to_vec(),
            type_name: ty.map(str::to_string),
            line: self.masked.line_of(fn_tok.start),
            offset: fn_tok.start,
            body,
        });
    }

    /// `impl<G> Type`, `impl Trait for Type`, `impl Trait for &mut Type` —
    /// the self type is the last path segment before `<`/`{`/`where`,
    /// taken after `for` when present.
    fn parse_impl(&mut self, mods: &mut Vec<String>) {
        self.bump(); // impl
        if self.at_punct(b'<') {
            self.skip_angles();
        }
        let mut candidate: Option<String> = None;
        let mut after_for = false;
        loop {
            let Some(t) = self.peek() else { return };
            match t.kind {
                TokKind::Punct(b'{') => break,
                TokKind::Punct(b';') => {
                    self.bump();
                    return;
                }
                TokKind::Punct(b'<') => self.skip_angles(),
                TokKind::Punct(b'(') => self.skip_group(b'(', b')'),
                TokKind::Ident { .. } => {
                    let name = t.ident_name(self.code).unwrap_or("").to_string();
                    self.bump();
                    match name.as_str() {
                        "for" => {
                            after_for = true;
                            candidate = None;
                        }
                        "where" => {
                            self.skip_to_brace_open();
                        }
                        "dyn" | "mut" | "const" => {}
                        _ => {
                            // Walk the rest of a `a::b::C` path; the last
                            // segment names the type.
                            let mut last = name;
                            while self.at_punct(b':')
                                && self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(b':'))
                            {
                                self.bump();
                                self.bump();
                                if let Some(seg) = self
                                    .peek()
                                    .and_then(|t| t.ident_name(self.code).map(str::to_string))
                                {
                                    self.bump();
                                    last = seg;
                                }
                            }
                            if candidate.is_none() || after_for {
                                candidate = Some(last);
                                after_for = false;
                            }
                        }
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.bump(); // '{'
        self.parse_scope(mods, candidate.as_deref(), true);
    }

    /// Parses one `use` declaration (tree form included) up to its `;`.
    fn parse_use(&mut self) {
        let mut prefix = Vec::new();
        self.parse_use_tree(&mut prefix);
        if self.at_punct(b';') {
            self.bump();
        }
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            let Some(t) = self.peek() else { return };
            match t.kind {
                TokKind::Ident { .. } => {
                    let seg = t.ident_name(self.code).unwrap_or("").to_string();
                    self.bump();
                    if self.at_punct(b':')
                        && self.toks.get(self.i + 1).is_some_and(|t| t.is_punct(b':'))
                    {
                        // `seg::...` — descend.
                        self.bump();
                        self.bump();
                        prefix.push(seg);
                        continue;
                    }
                    // Terminal segment, with optional `as` rename.
                    let mut alias = seg.clone();
                    if self.at_kw("as") {
                        self.bump();
                        if let Some(a) = self
                            .peek()
                            .and_then(|t| t.ident_name(self.code).map(str::to_string))
                        {
                            self.bump();
                            alias = a;
                        }
                    }
                    let mut path = prefix.clone();
                    path.push(seg);
                    self.out.imports.push(Import { alias, path });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                TokKind::Punct(b'*') => {
                    self.bump();
                    self.out.imports.push(Import {
                        alias: "*".to_string(),
                        path: prefix.clone(),
                    });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                TokKind::Punct(b'{') => {
                    self.bump();
                    loop {
                        if self.at_punct(b'}') {
                            self.bump();
                            break;
                        }
                        if self.at_punct(b',') {
                            self.bump();
                            continue;
                        }
                        if self.peek().is_none() {
                            break;
                        }
                        let before = prefix.len();
                        self.parse_use_tree(prefix);
                        prefix.truncate(before);
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => {
                    // `;` or anything unexpected ends the tree.
                    prefix.truncate(depth_at_entry);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn parsed(src: &str) -> ParsedFile {
        parse(&mask(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found in {:?}", p.fns))
    }

    #[test]
    fn free_fn_with_body_span() {
        let src = "fn alpha() {\n    beta();\n}\nfn beta() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        let a = fn_named(&p, "alpha");
        assert_eq!(a.line, 1);
        let (s, e) = a.body.expect("body");
        assert!(src[s..e].contains("beta()"));
        assert!(!src[s..e].contains("fn beta"));
    }

    #[test]
    fn impl_methods_carry_the_self_type() {
        let src = "struct Sim;\nimpl Sim {\n    pub fn run(&mut self) {}\n    fn helper(x: u32) -> u32 { x }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].type_name.as_deref(), Some("Sim"));
        assert_eq!(p.fns[0].name, "run");
        assert_eq!(p.fns[1].type_name.as_deref(), Some("Sim"));
    }

    #[test]
    fn trait_impl_takes_the_type_after_for() {
        let src = "impl Iterator for TraceIter<'_> {\n    fn next(&mut self) -> Option<u32> { None }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].type_name.as_deref(), Some("TraceIter"));
        assert_eq!(p.fns[0].name, "next");
    }

    #[test]
    fn qualified_trait_path_still_finds_the_type() {
        let src = "impl std::fmt::Display for DesignKind {\n    fn fmt(&self) {}\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].type_name.as_deref(), Some("DesignKind"));
    }

    #[test]
    fn reference_self_type_in_trait_impl() {
        let src = "impl<'a> From<&'a mut Network> for Wrapper {\n    fn from(n: &'a mut Network) -> Self { Wrapper }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].type_name.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn nested_generics_in_signatures_parse() {
        let src = "fn build(slots: Vec<Option<Box<dyn CachePolicy>>>) -> Vec<Option<Box<dyn CachePolicy>>> {\n    body()\n}\n";
        let p = parsed(src);
        let f = fn_named(&p, "build");
        let (s, e) = f.body.expect("body");
        assert!(src[s..e].contains("body()"));
    }

    #[test]
    fn fn_bound_arrow_inside_generics() {
        let src = "fn apply<F: Fn(u32) -> Vec<u64>, const N: usize>(f: F) -> [u8; 4] {\n    inner()\n}\nfn after() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2, "{:?}", p.fns);
        let f = fn_named(&p, "apply");
        assert!(src[f.body.expect("body").0..].starts_with('{'));
    }

    #[test]
    fn impl_trait_args_and_return() {
        let src = "fn run(reqs: impl Iterator<Item = Request> + Clone) -> impl Fn() -> u32 {\n    go()\n}\n";
        let p = parsed(src);
        let f = fn_named(&p, "run");
        let (s, e) = f.body.expect("body");
        assert_eq!(&src[s..e], "{\n    go()\n}");
    }

    #[test]
    fn array_semicolon_in_return_type_does_not_end_the_fn() {
        let src = "fn digest() -> [u8; 32] {\n    compute()\n}\n";
        let p = parsed(src);
        assert!(fn_named(&p, "digest").body.is_some());
    }

    #[test]
    fn raw_identifier_fn_name() {
        let src = "fn r#fn() { r#match() }\nfn r#match() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "fn");
        assert_eq!(p.fns[1].name, "match");
    }

    #[test]
    fn trait_decl_without_body_and_default_method() {
        let src = "trait Policy {\n    fn touch(&mut self, k: u64);\n    fn warm(&mut self) { self.touch(0) }\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[0].type_name.as_deref(), Some("Policy"));
    }

    #[test]
    fn inline_modules_nest() {
        let src = "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\nfn top() {}\n";
        let p = parsed(src);
        assert_eq!(fn_named(&p, "deep").modules, vec!["outer", "inner"]);
        assert_eq!(fn_named(&p, "shallow").modules, vec!["outer"]);
        assert!(fn_named(&p, "top").modules.is_empty());
    }

    #[test]
    fn use_trees_flatten_with_renames_and_globs() {
        let src = "use std::collections::{HashMap, BTreeMap as Ordered};\nuse crate::instrument::{peak_rss_kb, CellClock};\nuse icn_topology::*;\nuse a::b::c;\n";
        let p = parsed(src);
        let find = |alias: &str| {
            p.imports
                .iter()
                .find(|i| i.alias == alias)
                .unwrap_or_else(|| panic!("missing {alias}: {:?}", p.imports))
        };
        assert_eq!(find("HashMap").path, vec!["std", "collections", "HashMap"]);
        assert_eq!(find("Ordered").path, vec!["std", "collections", "BTreeMap"]);
        assert_eq!(
            find("peak_rss_kb").path,
            vec!["crate", "instrument", "peak_rss_kb"]
        );
        assert_eq!(
            find("CellClock").path,
            vec!["crate", "instrument", "CellClock"]
        );
        assert_eq!(find("*").path, vec!["icn_topology"]);
        assert_eq!(find("c").path, vec!["a", "b", "c"]);
    }

    #[test]
    fn nested_use_tree_groups() {
        let src = "use icn_core::{sim::{Simulator, Request}, sweep::run_cells};\n";
        let p = parsed(src);
        assert_eq!(p.imports.len(), 3);
        assert_eq!(p.imports[0].path, vec!["icn_core", "sim", "Simulator"]);
        assert_eq!(p.imports[1].path, vec!["icn_core", "sim", "Request"]);
        assert_eq!(p.imports[2].path, vec!["icn_core", "sweep", "run_cells"]);
    }

    #[test]
    fn strings_cannot_fake_items() {
        let src = "fn real() {\n    let s = \"fn fake() {}\";\n    s.len();\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn const_static_and_macro_items_are_skipped_whole() {
        let src = "const T: [u8; 2] = [1, 2];\nstatic S: u32 = { 4 };\nmacro_rules! m { ($x:expr) => { $x.unwrap() }; }\nfn survivor() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "survivor");
    }

    #[test]
    fn const_fn_and_unsafe_fn_are_fns() {
        let src = "const fn a() -> u32 { 1 }\npub(crate) unsafe fn b() {}\nasync fn c() {}\n";
        let p = parsed(src);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn struct_with_braces_then_fn() {
        let src = "pub struct Config {\n    pub jobs: usize,\n}\nenum Kind { A, B(u32) }\nfn after() {}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after");
    }

    #[test]
    fn where_clause_before_body() {
        let src = "fn spawn<F, D>(f: F, d: D) -> u32\nwhere\n    F: Fn(usize) -> Option<u32> + Sync,\n    D: Fn(u64),\n{\n    f(0).map_or(0, |x| x)\n}\n";
        let p = parsed(src);
        let f = fn_named(&p, "spawn");
        let (s, e) = f.body.expect("body");
        assert!(src[s..e].contains("map_or"));
    }

    #[test]
    fn line_numbers_are_exact() {
        let src = "// header\n\nfn first() {}\n\nmod m {\n    fn second() {}\n}\n";
        let p = parsed(src);
        assert_eq!(fn_named(&p, "first").line, 3);
        assert_eq!(fn_named(&p, "second").line, 6);
    }
}
