//! `unsafe-audit`: every `unsafe` site needs a `// SAFETY:` justification
//! and an inventory entry in `lint.toml`.
//!
//! Two requirements, both auditable in review:
//! 1. an `unsafe` keyword (block, fn, impl, trait) must have a line
//!    comment containing `SAFETY:` on the same line or the line directly
//!    above — the argument for soundness lives next to the code it argues
//!    about;
//! 2. every justified site must be listed under `[unsafe] sites` in
//!    `lint.toml` (as `path:line`), so the reviewer diff of any PR that
//!    adds unsafe code necessarily touches the committed inventory.
//!
//! The keyword is matched in the masked view, so `unsafe` in strings,
//! comments, and docs never counts. Sites in test code are audited too:
//! unsound test scaffolding corrupts exactly the determinism evidence the
//! test suite exists to produce.

use crate::rules::{token_offsets, RuleOutcome, Suppressed, Violation, UNSAFE_AUDIT};
use crate::symtab::FileUnit;
use std::collections::BTreeSet;

/// Runs the rule over all scanned files. Returns the outcome, the stale
/// inventory entries (listed in `lint.toml` but no longer in the code),
/// and the current inventory (every justified site, for
/// `--write-baseline`).
pub fn check(units: &[FileUnit], inventory: &[String]) -> (RuleOutcome, Vec<String>, Vec<String>) {
    let mut out = RuleOutcome::default();
    let mut current: Vec<String> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();

    for unit in units {
        let mut lines: Vec<usize> = token_offsets(&unit.source.masked.code, "unsafe", false)
            .into_iter()
            .map(|off| unit.source.masked.line_of(off))
            .collect();
        lines.dedup();
        for line in lines {
            let site = format!("{}:{}", unit.rel, line);
            seen.insert(site.clone());
            if !has_safety_comment(unit, line) {
                if unit.source.is_allowed(UNSAFE_AUDIT, line) {
                    // The allow covers the whole rule at this site —
                    // neither justification nor inventory is demanded.
                    out.suppressed.push(Suppressed {
                        path: unit.rel.clone(),
                        line,
                        rule: UNSAFE_AUDIT,
                    });
                } else {
                    out.violations.push(Violation {
                        rule: UNSAFE_AUDIT,
                        path: unit.rel.clone(),
                        line,
                        message: "`unsafe` without an adjacent `// SAFETY:` justification"
                            .to_string(),
                    });
                }
                continue;
            }
            current.push(site.clone());
            if !inventory.contains(&site) {
                out.violations.push(Violation {
                    rule: UNSAFE_AUDIT,
                    path: unit.rel.clone(),
                    line,
                    message: format!(
                        "unsafe site `{site}` is not inventoried under [unsafe] sites \
                         in lint.toml (--write-baseline to record it)"
                    ),
                });
            }
        }
    }

    let stale: Vec<String> = inventory
        .iter()
        .filter(|s| !seen.contains(*s))
        .cloned()
        .collect();
    current.sort();
    (out, stale, current)
}

/// A line comment containing `SAFETY:` on `line` or the line above.
fn has_safety_comment(unit: &FileUnit, line: usize) -> bool {
    unit.source
        .masked
        .line_comments
        .iter()
        .any(|(l, text)| (*l == line || *l + 1 == line) && text.contains("SAFETY:"))
}
