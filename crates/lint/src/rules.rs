//! The rule set and per-file matching.
//!
//! Each rule matches token patterns against the masked code of one file
//! (see [`crate::lexer`]); scoping (which crates, which files) lives in
//! [`Rule::applies`] and region checks (`#[cfg(test)]`, `obs` gates,
//! `lint:allow`) are consulted per match.

use crate::source::SourceFile;

/// Library crates in which panicking is a policy violation.
pub const LIB_CRATES: &[&str] = &[
    "core", "cache", "topology", "workload", "analysis", "obs", "idicn",
];

/// Crates whose simulation state must be bit-reproducible run-to-run.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "cache"];

/// The one file in `crates/core` allowed to touch wall clocks and
/// `icn_obs` without a feature gate (it *is* the gate).
pub const INSTRUMENT_FILE: &str = "instrument.rs";

/// The parallel sweep engine: its results must be merged in submission
/// order, so completion-order collection primitives are banned there.
pub const SWEEP_FILE: &str = "sweep.rs";

/// The epoch-sharded intra-cell engine: the same submission-order merge
/// discipline as [`SWEEP_FILE`] applies — lane deltas are reconciled in
/// canonical `(pop, seq)` order, never collected in completion order.
pub const SHARD_FILE: &str = "shard.rs";

/// The fault-injection schedule: documented as a *pure function* of
/// `(seed, config, window)`, so on top of the base entropy bans any clock
/// or RNG machinery at all is rejected there — a bare `Instant`,
/// `elapsed()`, or anything from the `rand` crate.
pub const FAULT_FILE: &str = "fault.rs";

/// The precomputed cost tables: construction must iterate dense index
/// ranges only, because any ordered-container walk would bake that
/// container's iteration order into `f64` summation order — a silent
/// bit-identity break the equivalence tests could only catch after the
/// fact. `HashMap`/`HashSet` are already banned crate-wide; this scope
/// additionally rejects the tree/heap structures whose order is
/// deterministic but still *insertion-shaped*.
pub const COSTS_FILE: &str = "costs.rs";

/// A single diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (e.g. `no-panic-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    /// Stable baseline key: `rule:path:line`.
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.rule, self.path, self.line)
    }
}

/// Where a file sits in the workspace, as far as rule scoping cares.
pub struct FileOrigin<'a> {
    /// `crates/<name>/...` component, if any.
    pub crate_name: Option<&'a str>,
    /// Path inside the crate (e.g. `src/sim.rs`).
    pub in_crate: &'a str,
}

impl<'a> FileOrigin<'a> {
    /// Splits a workspace-relative path like `crates/core/src/sim.rs`.
    pub fn of(rel_path: &'a str) -> Self {
        let mut crate_name = None;
        let mut in_crate = rel_path;
        if let Some(rest) = rel_path.strip_prefix("crates/") {
            if let Some((name, tail)) = rest.split_once('/') {
                crate_name = Some(name);
                in_crate = tail;
            }
        }
        Self {
            crate_name,
            in_crate,
        }
    }

    /// True for `src/**` files that are not binaries (`src/bin`, `main.rs`).
    fn is_lib_source(&self) -> bool {
        self.in_crate.starts_with("src/")
            && !self.in_crate.starts_with("src/bin/")
            && self.in_crate != "src/main.rs"
    }

    fn file_name(&self) -> &str {
        self.in_crate.rsplit('/').next().unwrap_or(self.in_crate)
    }
}

/// A pattern that must not appear in scoped code.
struct Pattern {
    /// Token text to search for in masked code.
    text: &'static str,
    /// When set, the match must be followed by this byte (e.g. `(` turns
    /// `unwrap` into a call match that leaves `unwrap_or` alone).
    call: bool,
    /// What to tell the developer.
    why: &'static str,
}

const PANIC_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "unwrap",
        call: true,
        why: "propagate errors instead of `unwrap()`",
    },
    Pattern {
        text: "expect",
        call: true,
        why: "propagate errors instead of `expect()`",
    },
    Pattern {
        text: "panic!",
        call: false,
        why: "library code must not `panic!`",
    },
    Pattern {
        text: "unreachable!",
        call: false,
        why: "library code must not `unreachable!`",
    },
    Pattern {
        text: "todo!",
        call: false,
        why: "no `todo!` in library code",
    },
    Pattern {
        text: "unimplemented!",
        call: false,
        why: "no `unimplemented!` in library code",
    },
];

const ENTROPY_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "SystemTime",
        call: false,
        why: "wall clock breaks run-to-run determinism",
    },
    Pattern {
        text: "Instant::now",
        call: false,
        why: "wall clock breaks run-to-run determinism",
    },
    Pattern {
        text: "thread_rng",
        call: false,
        why: "unseeded entropy breaks determinism",
    },
    Pattern {
        text: "from_entropy",
        call: false,
        why: "unseeded entropy breaks determinism",
    },
    Pattern {
        text: "HashMap",
        call: false,
        why: "iteration order may leak into metrics; use a Vec/BTreeMap or justify with lint:allow",
    },
    Pattern {
        text: "HashSet",
        call: false,
        why: "iteration order may leak into metrics; use a Vec/BTreeSet or justify with lint:allow",
    },
];

/// Completion-order collection primitives, banned in the sweep engine:
/// parallel results must land in pre-sized submission-indexed slots so the
/// output is bit-identical at any worker count (`JOBS=1` vs `JOBS=N`).
const ORDERED_MERGE_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "mpsc",
        call: false,
        why: "channel receive order is completion order; write results into \
              submission-indexed slots instead",
    },
    Pattern {
        text: "Mutex",
        call: false,
        why: "locked accumulation interleaves in completion order; write \
              results into submission-indexed slots instead",
    },
    Pattern {
        text: "rayon",
        call: false,
        why: "external parallelism runtimes are out; use std::thread::scope \
              with submission-indexed slots",
    },
    Pattern {
        text: "par_iter",
        call: false,
        why: "external parallelism runtimes are out; use std::thread::scope \
              with submission-indexed slots",
    },
];

/// Clock/RNG machinery banned outright in the fault schedule. The base
/// [`ENTROPY_PATTERNS`] already reject `SystemTime` / `Instant::now` /
/// `thread_rng`; these close the gap to *any* time or randomness source,
/// because `FaultSchedule` promises bit-equal answers for equal
/// `(seed, config)` on any host.
const PURE_SCHEDULE_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "Instant",
        call: false,
        why: "the fault schedule is a pure function of (seed, window); \
              no monotonic clocks, not even stored ones",
    },
    Pattern {
        text: "elapsed",
        call: true,
        why: "elapsed time depends on the host; derive windows from \
              request counts instead",
    },
    Pattern {
        text: "rand",
        call: false,
        why: "the schedule draws from its own SplitMix64 hash of the \
              seed, never from an RNG stream whose state depends on \
              call order",
    },
    Pattern {
        text: "Rng",
        call: false,
        why: "the schedule draws from its own SplitMix64 hash of the \
              seed, never from an RNG stream whose state depends on \
              call order",
    },
];

/// Ordered-container machinery banned in the cost tables (see
/// [`COSTS_FILE`]): the dense-range construction loops are the guarantee
/// that summation order is a function of indices alone.
const DENSE_CONSTRUCTION_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "BTreeMap",
        call: false,
        why: "cost-table construction iterates dense index ranges; an \
              ordered map bakes insertion-shaped iteration into f64 \
              summation order",
    },
    Pattern {
        text: "BTreeSet",
        call: false,
        why: "cost-table construction iterates dense index ranges; an \
              ordered set bakes insertion-shaped iteration into f64 \
              summation order",
    },
    Pattern {
        text: "BinaryHeap",
        call: false,
        why: "heap pop order depends on push history; cost tables must \
              derive every entry from its index alone",
    },
];

/// Timing and profiling machinery that must sit behind the `obs` feature
/// gate in `crates/core` (outside [`INSTRUMENT_FILE`]): span timing
/// compiled into the default build would spend hot-path cycles even when
/// nobody profiles, and the byte-identical-output invariant (profiling
/// on/off must not move a digit) is only auditable when every clock read
/// is visibly gated.
const GATED_TIMING_PATTERNS: &[Pattern] = &[
    Pattern {
        text: "Instant::now",
        call: false,
        why: "wall-clock reads in the deterministic core belong behind \
              `#[cfg(feature = \"obs\")]` (or in instrument.rs)",
    },
    Pattern {
        text: "Profiler",
        call: false,
        why: "profiler machinery in the deterministic core belongs behind \
              `#[cfg(feature = \"obs\")]` (or in instrument.rs)",
    },
    Pattern {
        text: "PhaseHandle",
        call: false,
        why: "profiler machinery in the deterministic core belongs behind \
              `#[cfg(feature = \"obs\")]` (or in instrument.rs)",
    },
    Pattern {
        text: "SpanGuard",
        call: false,
        why: "profiler machinery in the deterministic core belongs behind \
              `#[cfg(feature = \"obs\")]` (or in instrument.rs)",
    },
];

/// Rule identifiers, also usable in `lint:allow(...)` and baseline keys.
pub const NO_PANIC: &str = "no-panic-in-lib";
/// See [`NO_PANIC`].
pub const DETERMINISTIC: &str = "deterministic-core";
/// See [`NO_PANIC`].
pub const FEATURE_GATE: &str = "feature-gate-obs";
/// See [`NO_PANIC`].
pub const VENDOR_FROZEN: &str = "vendor-frozen";
/// See [`NO_PANIC`].
pub const ALLOW_NEEDS_REASON: &str = "allow-needs-reason";
/// Interprocedural taint reachability (see [`crate::reach`]).
pub const REACH: &str = "deterministic-core-reach";
/// `unsafe` sites need `// SAFETY:` + inventory (see [`crate::audit`]).
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Allocation ban in configured hot paths (see [`crate::hotpath`]).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// A `lint:allow` that suppresses nothing (engine-level, see
/// [`crate::engine`]): stale suppressions hide future violations.
pub const STALE_ALLOW: &str = "stale-allow";

/// The per-file content rules (vendor-frozen works on hashes, not content;
/// the interprocedural rules run workspace-wide, not per file).
pub const CONTENT_RULES: &[&str] = &[NO_PANIC, DETERMINISTIC, FEATURE_GATE, ALLOW_NEEDS_REASON];

/// A `lint:allow` suppression that actually fired: rule `rule` matched at
/// `path:line` and was silenced by a directive. The engine aggregates
/// these to detect directives that suppress nothing ([`STALE_ALLOW`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppressed {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line of the *suppressed match* (the covering directive
    /// sits on this line or the one above).
    pub line: usize,
    /// Rule name the directive was credited under.
    pub rule: &'static str,
}

/// What one rule pass produced: diagnostics plus the suppressions it
/// honored.
#[derive(Debug, Default)]
pub struct RuleOutcome {
    /// Violations (before baseline reconciliation).
    pub violations: Vec<Violation>,
    /// Matches silenced by `lint:allow` directives.
    pub suppressed: Vec<Suppressed>,
}

impl RuleOutcome {
    /// Folds another outcome into this one.
    pub fn merge(&mut self, other: RuleOutcome) {
        self.violations.extend(other.violations);
        self.suppressed.extend(other.suppressed);
    }
}

/// Runs one per-file content rule over one analysed file.
pub fn check_rule(rule: &'static str, rel_path: &str, file: &SourceFile) -> RuleOutcome {
    let origin = FileOrigin::of(rel_path);
    let mut out = RuleOutcome::default();

    let lib_scoped =
        origin.crate_name.is_some_and(|c| LIB_CRATES.contains(&c)) && origin.is_lib_source();
    let det_scoped = origin
        .crate_name
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
        && origin.is_lib_source()
        && origin.file_name() != INSTRUMENT_FILE;
    let gate_scoped = origin.crate_name == Some("core")
        && origin.is_lib_source()
        && origin.file_name() != INSTRUMENT_FILE;

    match rule {
        NO_PANIC if lib_scoped => {
            scan_patterns(NO_PANIC, PANIC_PATTERNS, rel_path, file, &mut out);
        }
        DETERMINISTIC if det_scoped => {
            scan_patterns(DETERMINISTIC, ENTROPY_PATTERNS, rel_path, file, &mut out);
            if origin.file_name() == SWEEP_FILE || origin.file_name() == SHARD_FILE {
                scan_patterns(
                    DETERMINISTIC,
                    ORDERED_MERGE_PATTERNS,
                    rel_path,
                    file,
                    &mut out,
                );
            }
            if origin.file_name() == FAULT_FILE {
                scan_patterns(
                    DETERMINISTIC,
                    PURE_SCHEDULE_PATTERNS,
                    rel_path,
                    file,
                    &mut out,
                );
            }
            if origin.file_name() == COSTS_FILE {
                scan_patterns(
                    DETERMINISTIC,
                    DENSE_CONSTRUCTION_PATTERNS,
                    rel_path,
                    file,
                    &mut out,
                );
            }
        }
        FEATURE_GATE if gate_scoped => {
            for off in token_offsets(&file.masked.code, "icn_obs", false) {
                let line = file.masked.line_of(off);
                if file.is_test_line(line) || file.is_obs_gated(line) {
                    continue;
                }
                if file.is_allowed(FEATURE_GATE, line) {
                    out.suppressed.push(Suppressed {
                        path: rel_path.to_string(),
                        line,
                        rule: FEATURE_GATE,
                    });
                    continue;
                }
                out.violations.push(Violation {
                    rule: FEATURE_GATE,
                    path: rel_path.to_string(),
                    line,
                    message: "`icn_obs` reference outside `#[cfg(feature = \"obs\")]` \
                              (and outside instrument.rs)"
                        .to_string(),
                });
            }
            for p in GATED_TIMING_PATTERNS {
                for off in token_offsets(&file.masked.code, p.text, p.call) {
                    let line = file.masked.line_of(off);
                    if file.is_test_line(line) || file.is_obs_gated(line) {
                        continue;
                    }
                    if file.is_allowed(FEATURE_GATE, line) {
                        out.suppressed.push(Suppressed {
                            path: rel_path.to_string(),
                            line,
                            rule: FEATURE_GATE,
                        });
                        continue;
                    }
                    out.violations.push(Violation {
                        rule: FEATURE_GATE,
                        path: rel_path.to_string(),
                        line,
                        message: format!("`{}`: {}", p.text, p.why),
                    });
                }
            }
        }
        // Directives are themselves linted: an allow without a reason
        // defeats the audit trail the directive exists to create.
        ALLOW_NEEDS_REASON => {
            for d in &file.allows {
                if !d.has_reason {
                    out.violations.push(Violation {
                        rule: ALLOW_NEEDS_REASON,
                        path: rel_path.to_string(),
                        line: d.line,
                        message: "lint:allow directive must carry a `: <reason>`".to_string(),
                    });
                }
            }
        }
        _ => {}
    }
    out
}

/// Runs every per-file content rule over one analysed file. `rel_path` is
/// workspace-relative with `/` separators.
pub fn check_file(rel_path: &str, file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in CONTENT_RULES {
        out.extend(check_rule(rule, rel_path, file).violations);
    }
    out
}

fn scan_patterns(
    rule: &'static str,
    patterns: &[Pattern],
    rel_path: &str,
    file: &SourceFile,
    out: &mut RuleOutcome,
) {
    for p in patterns {
        for off in token_offsets(&file.masked.code, p.text, p.call) {
            let line = file.masked.line_of(off);
            if file.is_test_line(line) {
                continue;
            }
            if file.is_allowed(rule, line) {
                out.suppressed.push(Suppressed {
                    path: rel_path.to_string(),
                    line,
                    rule,
                });
                continue;
            }
            out.violations.push(Violation {
                rule,
                path: rel_path.to_string(),
                line,
                message: format!("`{}`: {}", p.text, p.why),
            });
        }
    }
}

/// Byte offsets of identifier-boundary matches of `pat` in `code`; with
/// `call`, the token must be immediately followed by `(`.
pub(crate) fn token_offsets(code: &str, pat: &str, call: bool) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(pat) {
        let at = from + rel;
        let end = at + pat.len();
        let pre_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let post_ok = if call {
            b.get(end) == Some(&b'(')
        } else {
            end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_')
        };
        if pre_ok && post_ok {
            out.push(at);
        }
        from = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, &SourceFile::analyze(src))
    }

    #[test]
    fn unwrap_in_lib_crate_is_flagged_with_exact_line() {
        let v = check("crates/core/src/sim.rs", "fn f() {\n    x.unwrap();\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, NO_PANIC);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unwrap_or_else_and_unwrap_or_are_not_unwrap() {
        let v = check(
            "crates/core/src/sim.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(Vec::new); }\n",
        );
        assert!(v.is_empty());
        let v = check(
            "crates/core/src/sim.rs",
            "fn f() { x.unwrap_or_else(|| panic!(\"boom\")); }\n",
        );
        assert_eq!(v.len(), 1, "the panic! inside still fires");
        assert!(v[0].message.contains("panic!"));
    }

    #[test]
    fn tests_benches_bins_are_exempt() {
        let src = "fn f() { x.unwrap(); }\n";
        assert!(check("crates/core/tests/t.rs", src).is_empty());
        assert!(check("crates/bench/src/bin/fig6.rs", src).is_empty());
        assert!(check("crates/lint/src/main.rs", src).is_empty());
        assert!(!check("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check("crates/cache/src/fifo.rs", src).is_empty());
    }

    #[test]
    fn deterministic_core_flags_entropy_and_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = rand::thread_rng(); }\n";
        let v = check("crates/core/src/sweep.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(DETERMINISTIC, 1)));
        assert!(rules.contains(&(DETERMINISTIC, 2)));
        // Out of scope: same content in workload is fine.
        assert!(check("crates/workload/src/zipf.rs", src).is_empty());
    }

    #[test]
    fn sweep_rs_rejects_completion_order_collection() {
        let src = "use std::sync::mpsc;\nfn f(m: &std::sync::Mutex<Vec<u8>>) {}\n";
        let v = check("crates/core/src/sweep.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(DETERMINISTIC, 1)), "mpsc flagged: {v:?}");
        assert!(rules.contains(&(DETERMINISTIC, 2)), "Mutex flagged: {v:?}");
        // The ban is scoped to the sweep engine: the same content elsewhere
        // in the deterministic crates is only subject to the base patterns.
        assert!(check("crates/core/src/sim.rs", src).is_empty());
    }

    #[test]
    fn sweep_rs_rejects_external_parallelism_runtimes() {
        let src = "fn f() { xs.par_iter(); }\nuse rayon::prelude::*;\n";
        let v = check("crates/core/src/sweep.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == DETERMINISTIC));
        assert!(check("crates/cache/src/lru.rs", src).is_empty());
    }

    #[test]
    fn fault_rs_rejects_any_clock_or_rng_machinery() {
        // A *stored* Instant and a generic RNG bound never call now() or
        // thread_rng(), so the base entropy patterns let them through —
        // the fault-schedule scope must not.
        let src = "fn f(deadline: std::time::Instant) {}\nfn g<R: Rng>(r: &mut R) {}\n";
        let v = check("crates/core/src/fault.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(DETERMINISTIC, 1)), "bare Instant: {v:?}");
        assert!(rules.contains(&(DETERMINISTIC, 2)), "Rng bound: {v:?}");
        // The same content elsewhere in the deterministic crates is only
        // subject to the base patterns, which it satisfies.
        assert!(check("crates/core/src/sim.rs", src).is_empty());
        // And the classic offenders stay banned in fault.rs too.
        let v = check(
            "crates/core/src/fault.rs",
            "fn h() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert!(!v.is_empty());
    }

    #[test]
    fn costs_rs_rejects_ordered_container_construction() {
        // BTree iteration order is deterministic but insertion-shaped —
        // the base entropy patterns allow it (they even *recommend* it
        // over HashMap), so the cost-table scope must close that gap.
        let src = "use std::collections::BTreeMap;\nfn f() { let h = std::collections::BinaryHeap::<u32>::new(); }\nuse std::collections::BTreeSet;\n";
        let v = check("crates/core/src/costs.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(DETERMINISTIC, 1)), "BTreeMap: {v:?}");
        assert!(rules.contains(&(DETERMINISTIC, 2)), "BinaryHeap: {v:?}");
        assert!(rules.contains(&(DETERMINISTIC, 3)), "BTreeSet: {v:?}");
        // The same content elsewhere in the deterministic crates passes —
        // BTreeMap is the sanctioned HashMap replacement outside the
        // cost tables.
        assert!(check("crates/core/src/sim.rs", src).is_empty());
        assert!(check("crates/cache/src/lru.rs", src).is_empty());
    }

    #[test]
    fn instrument_rs_is_exempt_from_determinism_and_gating() {
        let src = "use icn_obs::Registry;\nfn f() { let t = std::time::Instant::now(); }\n";
        assert!(check("crates/core/src/instrument.rs", src).is_empty());
        // sim.rs: ungated icn_obs (gate), wall clock (determinism), and the
        // same wall clock again as an ungated-timing finding.
        let v = check("crates/core/src/sim.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(rules.contains(&(FEATURE_GATE, 1)));
        assert!(rules.contains(&(DETERMINISTIC, 2)));
        assert!(rules.contains(&(FEATURE_GATE, 2)));
    }

    #[test]
    fn ungated_timing_machinery_in_core_is_a_gate_finding() {
        // A stored Profiler handle and a span guard type never call now()
        // or reference icn_obs by path, so the base gate pattern lets them
        // through — the timing patterns must not.
        let src = "struct S { p: Profiler }\nfn f(g: SpanGuard) {}\nfn h(p: &PhaseHandle) {}\n";
        let v = check("crates/core/src/sim.rs", src);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(FEATURE_GATE, 1)), "Profiler: {v:?}");
        assert!(rules.contains(&(FEATURE_GATE, 2)), "SpanGuard: {v:?}");
        assert!(rules.contains(&(FEATURE_GATE, 3)), "PhaseHandle: {v:?}");
        // Behind the gate the same machinery is sanctioned.
        let gated = "#[cfg(feature = \"obs\")]\nstruct S { p: Profiler }\n";
        assert!(check("crates/core/src/sim.rs", gated).is_empty());
        // The scope is crates/core: cache has no obs instrumentation story,
        // and non-deterministic crates time freely.
        assert!(check("crates/workload/src/zipf.rs", src).is_empty());
    }

    #[test]
    fn obs_gated_reference_passes_ungated_fails() {
        let gated = "#[cfg(feature = \"obs\")]\nuse icn_obs::Registry;\n";
        assert!(check("crates/core/src/sweep.rs", gated).is_empty());
        let ungated = "use icn_obs::Registry;\n";
        let v = check("crates/core/src/sweep.rs", ungated);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, FEATURE_GATE);
    }

    #[test]
    fn allow_directive_suppresses_and_needs_reason() {
        let ok =
            "fn f() {\n    // lint:allow(no-panic-in-lib): checked by caller\n    x.unwrap();\n}\n";
        assert!(check("crates/core/src/sim.rs", ok).is_empty());
        let bad = "fn f() {\n    x.unwrap(); // lint:allow(no-panic-in-lib)\n}\n";
        let v = check("crates/core/src/sim.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, ALLOW_NEEDS_REASON);
    }

    #[test]
    fn patterns_in_comments_and_strings_never_fire() {
        let src = "// calls unwrap() on the inner value\nfn f() { g(\"panic!\"); }\n";
        assert!(check("crates/core/src/sim.rs", src).is_empty());
    }
}
