//! End-to-end fixture tests: build a miniature workspace on disk, scan it
//! with the real engine, and assert exact `file:line` diagnostics,
//! baseline reconciliation, and vendor freezing.

use icn_lint::config::Config;
use icn_lint::engine;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static FIXTURE_SEQ: AtomicU32 = AtomicU32::new(0);

/// A throwaway workspace rooted in the OS temp dir; removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new() -> Self {
        let root = std::env::temp_dir().join(format!(
            "icn-lint-fixture-{}-{}",
            std::process::id(),
            FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdirs");
        fs::write(path, content).expect("write fixture file");
        self
    }

    fn scan(&self, config: &Config) -> engine::Report {
        engine::scan(&self.root, config).expect("scan fixture")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn keys(report: &engine::Report) -> Vec<String> {
    report.new.iter().map(|v| v.key()).collect()
}

#[test]
fn exact_file_line_diagnostics() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        "//! Doc.\nfn route() {\n    let x = compute();\n    x.unwrap();\n}\n",
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec!["no-panic-in-lib:crates/core/src/sim.rs:4"]
    );
    assert!(!report.ok());
}

#[test]
fn rules_do_not_fire_inside_literals_or_comments() {
    let fx = Fixture::new();
    fx.write(
        "crates/cache/src/lru.rs",
        concat!(
            "/* block /* nested unwrap() */ still comment */\n",
            "fn f() -> usize {\n",
            "    let s = r#\"x.unwrap() and panic!(\"no\")\"#;\n",
            "    let c = '\"';\n",
            "    let _ = c;\n",
            "    s.len() // trailing unwrap() mention\n",
            "}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert!(report.ok(), "unexpected: {:?}", report.new);
}

#[test]
fn allow_directive_suppresses_but_reasonless_allow_fails() {
    let fx = Fixture::new();
    fx.write(
        "crates/topology/src/net.rs",
        concat!(
            "fn ok() {\n",
            "    // lint:allow(no-panic-in-lib): adjacency validated at build\n",
            "    x.unwrap();\n",
            "}\n",
            "fn bad() {\n",
            "    y.unwrap(); // lint:allow(no-panic-in-lib)\n",
            "}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec!["allow-needs-reason:crates/topology/src/net.rs:6"],
        "the reasonless directive suppresses the unwrap but is itself flagged"
    );
}

#[test]
fn baseline_grandfathers_and_reports_stale_entries() {
    let fx = Fixture::new();
    fx.write(
        "crates/workload/src/zipf.rs",
        "fn f() {\n    x.unwrap();\n}\n",
    );
    let mut config = Config::default();
    config
        .baseline
        .push("no-panic-in-lib:crates/workload/src/zipf.rs:2".into());
    config
        .baseline
        .push("no-panic-in-lib:crates/workload/src/gone.rs:9".into());
    let report = fx.scan(&config);
    assert!(report.ok(), "baselined violation must not fail the run");
    assert_eq!(report.baselined.len(), 1);
    assert_eq!(
        report.stale,
        vec!["no-panic-in-lib:crates/workload/src/gone.rs:9".to_string()]
    );
}

#[test]
fn deterministic_core_and_feature_gate_scoping() {
    let fx = Fixture::new();
    // HashMap in core: flagged; in workload: fine. icn_obs ungated in core:
    // flagged; gated: fine; in instrument.rs: fine.
    fx.write(
        "crates/core/src/sweep.rs",
        "use std::collections::HashMap;\nuse icn_obs::Registry;\n#[cfg(feature = \"obs\")]\nuse icn_obs::Counter;\n",
    )
    .write("crates/core/src/instrument.rs", "use icn_obs::Registry;\n")
    .write(
        "crates/workload/src/trace.rs",
        "use std::collections::HashMap;\n",
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core:crates/core/src/sweep.rs:1",
            "feature-gate-obs:crates/core/src/sweep.rs:2",
        ]
    );
}

#[test]
fn ungated_timing_machinery_is_flagged_gated_is_not() {
    let fx = Fixture::new();
    // A stored Profiler and a bare Instant::now in core source must be
    // feature-gate findings; the identical machinery behind
    // `#[cfg(feature = "obs")]` or inside instrument.rs passes.
    fx.write(
        "crates/core/src/sim.rs",
        concat!(
            "struct Obs { profiler: Profiler }\n",
            "fn t() -> u64 { std::time::Instant::now().elapsed().as_nanos() as u64 }\n",
            "#[cfg(feature = \"obs\")]\n",
            "fn gated(p: &PhaseHandle) {}\n",
        ),
    )
    .write(
        "crates/core/src/instrument.rs",
        "use icn_obs::Profiler;\nfn t() { let _ = std::time::Instant::now(); }\n",
    );
    let report = fx.scan(&Config::default());
    let found = keys(&report);
    assert!(
        found.contains(&"feature-gate-obs:crates/core/src/sim.rs:1".to_string()),
        "{found:?}"
    );
    assert!(
        found.contains(&"feature-gate-obs:crates/core/src/sim.rs:2".to_string()),
        "{found:?}"
    );
    assert!(
        !found.iter().any(|k| k.contains("sim.rs:4")),
        "gated PhaseHandle must pass: {found:?}"
    );
    assert!(
        !found.iter().any(|k| k.contains("instrument.rs")),
        "instrument.rs is the sanctioned home: {found:?}"
    );
}

#[test]
fn sweep_engine_must_merge_in_submission_order() {
    let fx = Fixture::new();
    // Completion-order collection (channels, locked accumulators, rayon)
    // is banned in the sweep engine specifically; the same tokens in
    // another deterministic-crate file only hit the base entropy rules.
    fx.write(
        "crates/core/src/sweep.rs",
        concat!(
            "use std::sync::mpsc;\n",
            "fn collect(m: &std::sync::Mutex<Vec<u32>>) {}\n",
            "// mentioning Mutex in a comment is fine\n",
        ),
    )
    .write(
        "crates/core/src/sim.rs",
        "fn f(m: &std::sync::Mutex<Vec<u32>>) {}\n",
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core:crates/core/src/sweep.rs:1",
            "deterministic-core:crates/core/src/sweep.rs:2",
        ]
    );
    assert!(report.new[0].message.contains("submission-indexed"));
}

/// Guard for the PR 4 acceptance criterion: the fault schedule must stay a
/// pure function of `(seed, config)`. Introducing any clock or RNG use into
/// `crates/core/src/fault.rs` — even forms the base entropy rules allow
/// elsewhere — must fail a previously clean scan.
#[test]
fn regression_clock_or_rng_in_fault_schedule_fails() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/fault.rs",
        "fn crashes(seed: u64, window: u64) -> bool { seed ^ window != 0 }\n",
    );
    let config = Config::default();
    assert!(fx.scan(&config).ok(), "pure schedule scans clean");

    fx.write(
        "crates/core/src/fault.rs",
        concat!(
            "use std::time::SystemTime;\n",
            "fn f(deadline: std::time::Instant) {}\n",
            "fn g<R: Rng>(r: &mut R) {}\n",
        ),
    );
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core:crates/core/src/fault.rs:1",
            "deterministic-core:crates/core/src/fault.rs:2",
            "deterministic-core:crates/core/src/fault.rs:3",
        ]
    );
    // The stored-Instant form is legal in other core files (only `::now`
    // is entropy there) — the ban is scoped to the schedule.
    fx.write(
        "crates/core/src/fault.rs",
        "fn crashes(seed: u64, window: u64) -> bool { seed ^ window != 0 }\n",
    )
    .write(
        "crates/core/src/capacity.rs",
        "fn f(deadline: std::time::Instant) {}\n",
    );
    assert!(fx.scan(&config).ok());
}

/// Guard for the cost-table scope: ordered-container construction in
/// `crates/core/src/costs.rs` — legal anywhere else in the deterministic
/// crates — must fail a previously clean scan.
#[test]
fn regression_ordered_containers_in_cost_tables_fail() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/costs.rs",
        "fn build(n: u32) -> Vec<f64> { (0..n).map(|i| i as f64).collect() }\n",
    );
    let config = Config::default();
    assert!(fx.scan(&config).ok(), "dense construction scans clean");

    fx.write(
        "crates/core/src/costs.rs",
        concat!(
            "use std::collections::BTreeMap;\n",
            "use std::collections::BTreeSet;\n",
            "fn f() { let h = std::collections::BinaryHeap::<u32>::new(); }\n",
        ),
    );
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core:crates/core/src/costs.rs:1",
            "deterministic-core:crates/core/src/costs.rs:2",
            "deterministic-core:crates/core/src/costs.rs:3",
        ]
    );
    // The same tokens elsewhere in core are the *sanctioned* HashMap
    // replacement — the ban is scoped to the cost tables.
    fx.write(
        "crates/core/src/costs.rs",
        "fn build(n: u32) -> Vec<f64> { (0..n).map(|i| i as f64).collect() }\n",
    )
    .write(
        "crates/core/src/metrics.rs",
        "use std::collections::BTreeMap;\n",
    );
    assert!(fx.scan(&config).ok());
}

#[test]
fn cfg_test_modules_are_exempt_everywhere() {
    let fx = Fixture::new();
    fx.write(
        "crates/idicn/src/proxy.rs",
        concat!(
            "fn lib_fn() -> u32 { 7 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::time::Instant;\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        let _ = Instant::now();\n",
            "        lib_fn().checked_mul(2).unwrap();\n",
            "        panic!(\"assert style\");\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert!(report.ok(), "unexpected: {:?}", report.new);
}

#[test]
fn vendor_edits_require_a_hash_bump() {
    let fx = Fixture::new();
    fx.write("vendor/rand/src/lib.rs", "pub fn seeded() {}\n");
    // Unfrozen vendor crate: flagged.
    let report = fx.scan(&Config::default());
    assert_eq!(keys(&report), vec!["vendor-frozen:vendor/rand:0"]);

    // Freeze it, scan again: clean.
    let config = Config {
        vendor: engine::vendor_digests(&fx.root).expect("digests"),
        ..Config::default()
    };
    assert!(fx.scan(&config).ok());

    // Edit the vendored file: flagged again until the hash is bumped.
    fx.write(
        "vendor/rand/src/lib.rs",
        "pub fn seeded() { /* changed */ }\n",
    );
    let report = fx.scan(&config);
    assert_eq!(keys(&report), vec!["vendor-frozen:vendor/rand:0"]);
    assert!(report.new[0].message.contains("changed"));
}

#[test]
fn write_baseline_round_trip_makes_the_tree_pass() {
    let fx = Fixture::new();
    fx.write(
        "crates/analysis/src/stats.rs",
        "fn f() {\n    a.unwrap();\n    b.expect(\"msg\");\n}\n",
    )
    .write("vendor/serde/src/lib.rs", "pub struct S;\n");
    let fresh = engine::regenerate_baseline(&fx.root, &Config::default()).expect("regen");
    assert_eq!(fresh.baseline.len(), 2);
    assert_eq!(fresh.vendor.len(), 1);
    // The regenerated config round-trips through lint.toml text and the
    // tree then scans clean.
    let parsed = Config::parse(&fresh.render());
    assert_eq!(parsed, fresh);
    let report = fx.scan(&parsed);
    assert!(report.ok(), "unexpected: {:?}", report.new);
    assert_eq!(report.baselined.len(), 2);
}

#[test]
fn json_report_counts_burn_down() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        "fn f() {\n    x.unwrap();\n    y.unwrap();\n}\n",
    );
    let mut config = Config::default();
    config
        .baseline
        .push("no-panic-in-lib:crates/core/src/sim.rs:2".into());
    let report = fx.scan(&config);
    let json = report.render_json();
    assert!(json.contains("\"new_total\":1"), "{json}");
    assert!(json.contains("\"baselined_total\":1"), "{json}");
    assert!(
        json.contains("\"new_counts\":{\"no-panic-in-lib\":1}"),
        "{json}"
    );
    assert!(json.contains("\"line\":3"), "{json}");
}

#[test]
fn multibyte_utf8_keeps_line_numbers_exact() {
    let fx = Fixture::new();
    fx.write(
        "crates/obs/src/hist.rs",
        "// héllo — ünïcode ↑↓\nfn f() {\n    let s = \"μ σ → ∞\";\n    s.parse::<f64>().unwrap();\n}\n",
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec!["no-panic-in-lib:crates/obs/src/hist.rs:4"]
    );
}

/// Guard for the acceptance criterion: introducing a forbidden `unwrap()`
/// into `crates/core/src/sim.rs` must fail a previously clean scan.
#[test]
fn regression_new_unwrap_in_core_sim_fails() {
    let fx = Fixture::new();
    fx.write("crates/core/src/sim.rs", "fn route() -> u32 { 1 }\n");
    let config = Config::default();
    assert!(fx.scan(&config).ok());
    fx.write(
        "crates/core/src/sim.rs",
        "fn route() -> u32 { compute().unwrap() }\n",
    );
    let report = fx.scan(&config);
    assert!(!report.ok());
    assert_eq!(report.new[0].rule, "no-panic-in-lib");
}

/// Guard for the PR 7 acceptance criterion: a nondeterminism source hidden
/// behind a helper in *another crate* — invisible to the per-file
/// `deterministic-core` rule — must be reported by the reach analysis with
/// the full call chain in the diagnostic.
#[test]
fn cross_module_taint_chain_reports_the_full_chain() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        concat!(
            "use icn_topology::net::jitter_ns;\n",
            "pub struct Simulator;\n",
            "impl Simulator {\n",
            "    pub fn run(&mut self) -> u64 {\n",
            "        self.step()\n",
            "    }\n",
            "    fn step(&mut self) -> u64 {\n",
            "        jitter_ns()\n",
            "    }\n",
            "}\n",
        ),
    )
    .write(
        "crates/topology/src/net.rs",
        concat!(
            "pub fn jitter_ns() -> u64 {\n",
            "    std::time::Instant::now().elapsed().as_nanos() as u64\n",
            "}\n",
        ),
    );
    let config = Config {
        reach_entries: vec!["icn_core::sim::Simulator::run".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec!["deterministic-core-reach:crates/topology/src/net.rs:2"]
    );
    let msg = &report.new[0].message;
    assert!(msg.contains("Instant::now"), "{msg}");
    assert!(
        msg.contains("Simulator::run -> Simulator::step -> net::jitter_ns"),
        "chain must be printed: {msg}"
    );
}

/// Obs-gated instrumentation reachable from an entry point must not be a
/// reach finding: the default build compiles it to nothing.
#[test]
fn obs_gated_source_is_not_a_reach_finding() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        concat!(
            "use icn_topology::net::stamp;\n",
            "pub struct Simulator;\n",
            "impl Simulator {\n",
            "    pub fn run(&mut self) {\n",
            "        stamp();\n",
            "    }\n",
            "}\n",
        ),
    )
    .write(
        "crates/topology/src/net.rs",
        concat!(
            "pub fn stamp() {\n",
            "    #[cfg(feature = \"obs\")]\n",
            "    let _t = std::time::Instant::now();\n",
            "}\n",
        ),
    );
    let config = Config {
        reach_entries: vec!["icn_core::sim::Simulator::run".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert!(report.ok(), "unexpected: {:?}", report.new);
}

/// A justified reach exemption: the allow directive suppresses the finding
/// and is credited, so `stale-allow` stays quiet about it.
#[test]
fn reach_allow_suppresses_and_is_not_stale() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        concat!(
            "pub struct Simulator;\n",
            "impl Simulator {\n",
            "    pub fn run(&mut self) {\n",
            "        mode();\n",
            "    }\n",
            "}\n",
            "fn mode() -> bool {\n",
            "    // lint:allow(deterministic-core-reach): build-mode switch, not per-run input\n",
            "    std::env::var_os(\"ICN_MODE\").is_some()\n",
            "}\n",
        ),
    );
    let config = Config {
        reach_entries: vec!["icn_core::sim::Simulator::run".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert!(report.ok(), "unexpected: {:?}", report.new);
}

#[test]
fn unsafe_audit_demands_safety_comment_and_inventory() {
    let fx = Fixture::new();
    fx.write(
        "crates/cache/src/lru.rs",
        concat!(
            "fn naked(p: *const u8) -> u8 {\n",
            "    unsafe { *p }\n",
            "}\n",
            "fn justified(p: *const u8) -> u8 {\n",
            "    // SAFETY: caller guarantees p is valid for reads\n",
            "    unsafe { *p }\n",
            "}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec![
            "unsafe-audit:crates/cache/src/lru.rs:2",
            "unsafe-audit:crates/cache/src/lru.rs:6",
        ]
    );
    assert!(
        report.new[0].message.contains("SAFETY:"),
        "{:?}",
        report.new
    );
    assert!(
        report.new[1].message.contains("--write-baseline"),
        "{:?}",
        report.new
    );

    // Justified and inventoried: clean, and the inventory is reported.
    fx.write(
        "crates/cache/src/lru.rs",
        concat!(
            "fn justified(p: *const u8) -> u8 {\n",
            "    // SAFETY: caller guarantees p is valid for reads\n",
            "    unsafe { *p }\n",
            "}\n",
        ),
    );
    let config = Config {
        unsafe_sites: vec!["crates/cache/src/lru.rs:3".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert!(report.ok(), "unexpected: {:?}", report.new);
    assert_eq!(
        report.unsafe_inventory,
        vec!["crates/cache/src/lru.rs:3".to_string()]
    );

    // Removing the unsafe leaves the inventory entry stale.
    fx.write("crates/cache/src/lru.rs", "fn safe_now() {}\n");
    let report = fx.scan(&config);
    assert!(report.ok());
    assert_eq!(
        report.stale_unsafe,
        vec!["crates/cache/src/lru.rs:3".to_string()]
    );
}

/// Guard for the PR 5 invariant: allocation in a configured hot-path root
/// *or one of its direct callees* fails the scan; cold siblings the root
/// never calls are untouched.
#[test]
fn hot_path_alloc_bans_roots_and_direct_callees() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/sim.rs",
        concat!(
            "pub struct Simulator;\n",
            "impl Simulator {\n",
            "    pub fn process(&mut self) {\n",
            "        self.refill();\n",
            "        let _label = format!(\"req\");\n",
            "    }\n",
            "    fn refill(&mut self) {\n",
            "        let _v: Vec<u32> = Vec::new();\n",
            "    }\n",
            "    fn cold(&mut self) {\n",
            "        let _s = String::new();\n",
            "    }\n",
            "}\n",
        ),
    );
    let config = Config {
        hot_path: vec!["Simulator::process".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec![
            "hot-path-alloc:crates/core/src/sim.rs:5",
            "hot-path-alloc:crates/core/src/sim.rs:8",
        ]
    );
    assert!(
        report.new[0].message.contains("`format!`"),
        "{:?}",
        report.new
    );
    assert!(
        report.new[1].message.contains("direct callee"),
        "{:?}",
        report.new
    );
}

#[test]
fn stale_allow_directive_is_flagged() {
    let fx = Fixture::new();
    fx.write(
        "crates/topology/src/net.rs",
        concat!(
            "fn fine() -> u32 {\n",
            "    // lint:allow(no-panic-in-lib): leftover from a removed unwrap\n",
            "    7\n",
            "}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec!["stale-allow:crates/topology/src/net.rs:2"]
    );
    assert!(report.new[0].message.contains("suppresses nothing"));
}

/// A configured entry that resolves to no function is itself a violation:
/// renames must not silently disable the analysis.
#[test]
fn unresolvable_reach_and_hot_path_entries_are_flagged() {
    let fx = Fixture::new();
    fx.write("crates/core/src/sim.rs", "pub fn run_all() {}\n");
    let config = Config {
        reach_entries: vec!["icn_core::sim::gone".into()],
        hot_path: vec!["Simulator::vanished".into()],
        ..Config::default()
    };
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core-reach:lint.toml:0",
            "hot-path-alloc:lint.toml:0",
        ]
    );
}

/// Guard for the PR 10 invariant: the epoch-sharded engine merges lane
/// deltas in canonical `(pop, seq)` order, so `shard.rs` carries the same
/// completion-order-collection ban as `sweep.rs`; its lane directory is a
/// keyed `HashMap`, legal only behind an explicit allow.
#[test]
fn shard_engine_must_merge_in_submission_order() {
    let fx = Fixture::new();
    fx.write(
        "crates/core/src/shard.rs",
        concat!(
            "use std::sync::mpsc;\n",
            "fn collect(m: &std::sync::Mutex<Vec<u32>>) {}\n",
            "fn lanes(d: &std::collections::HashMap<u32, u128>) {}\n",
            "// lint:allow(deterministic-core): keyed lookups only, order never observed\n",
            "fn dir(d: &std::collections::HashMap<u32, u128>) {}\n",
        ),
    );
    let report = fx.scan(&Config::default());
    assert_eq!(
        keys(&report),
        vec![
            "deterministic-core:crates/core/src/shard.rs:1",
            "deterministic-core:crates/core/src/shard.rs:2",
            "deterministic-core:crates/core/src/shard.rs:3",
        ],
        "mpsc/Mutex banned, bare HashMap flagged, allowed HashMap passes"
    );
    assert!(report.new[0].message.contains("submission-indexed"));
}

/// Guard for the PR 10 invariant: the per-epoch reconcile loop is a
/// configured hot-path root, so allocating a fresh delta buffer per epoch
/// fails the scan; the swap-with-persistent-scratch shape passes.
#[test]
fn shard_reconcile_loop_must_not_allocate() {
    let fx = Fixture::new();
    let config = Config {
        hot_path: vec!["shard::reconcile".into()],
        ..Config::default()
    };
    fx.write(
        "crates/core/src/shard.rs",
        concat!(
            "fn reconcile(lanes: &mut [Vec<u32>]) {\n",
            "    for lane in lanes.iter_mut() {\n",
            "        let drained: Vec<u32> = Vec::new();\n",
            "        lane.clear();\n",
            "        let _ = drained;\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = fx.scan(&config);
    assert_eq!(
        keys(&report),
        vec!["hot-path-alloc:crates/core/src/shard.rs:3"],
        "per-epoch allocation in the reconcile loop must be flagged"
    );
    fx.write(
        "crates/core/src/shard.rs",
        concat!(
            "fn reconcile(lanes: &mut [Vec<u32>], scratch: &mut Vec<u32>) {\n",
            "    for lane in lanes.iter_mut() {\n",
            "        std::mem::swap(lane, scratch);\n",
            "        scratch.clear();\n",
            "        std::mem::swap(lane, scratch);\n",
            "    }\n",
            "}\n",
        ),
    );
    assert!(
        fx.scan(&config).ok(),
        "capacity-preserving swap with a caller-owned scratch is clean"
    );
}

#[test]
fn fixture_paths_are_real() {
    let fx = Fixture::new();
    fx.write("crates/core/src/lib.rs", "fn ok() {}\n");
    assert!(Path::new(&fx.root).join("crates/core/src/lib.rs").is_file());
    let report = fx.scan(&Config::default());
    assert_eq!(report.files, 1);
}
