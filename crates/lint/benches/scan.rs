//! Full-workspace lint scan latency.
//!
//! The scan runs on every `scripts/check.sh` invocation, so its cost is
//! developer-loop latency; `check.sh` enforces a wall-clock budget with
//! `--budget-ms`, and this bench is where regressions are diagnosed
//! (per-rule timings come from `icn-lint --json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use icn_lint::{engine, Config};
use std::path::Path;

fn scan_benches(c: &mut Criterion) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = Config::load(&root.join("lint.toml")).expect("load lint.toml");

    let mut group = c.benchmark_group("lint");
    group.sample_size(10);
    group.bench_function("workspace_scan", |b| {
        b.iter(|| {
            let report = engine::scan(black_box(&root), black_box(&config)).expect("scan");
            black_box(report.files)
        })
    });
    group.finish();
}

criterion_group!(benches, scan_benches);
criterion_main!(benches);
