//! Umbrella crate for the reproduction of *Less Pain, Most of the Gain:
//! Incrementally Deployable ICN* (Fayazbakhsh et al., SIGCOMM 2013).
//!
//! Re-exports every workspace crate so the examples and integration tests
//! can use one dependency. See `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]

pub use icn_analysis;
pub use icn_cache;
pub use icn_core;
pub use icn_topology;
pub use icn_workload;
pub use idicn;
